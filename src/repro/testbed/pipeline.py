"""The end-to-end testbed pipeline (Fig. 4), as composable stages.

This module wires the whole workflow together::

    mixture of attack + benign traffic
        -> monitors (Zeek / syslog / auditd / osquery) produce raw records
        -> traffic mirror
        -> normalisation (raw record -> symbolic alert)
        -> alert filtering (scan suppression, dedup)
        -> detection models (factor graph, rule-based, ...)
        -> response & remediation (operator notification, BHR block,
           honeypot recycling)

Each arrow is a :class:`repro.testbed.stages.PipelineStage` -- a
batch-in/batch-out component with per-stage timing -- and
:class:`TestbedPipeline` is the assembly: it owns the stage chain,
routes ingested batches through it, and keeps the per-stage counters.
The detection stage is a :class:`repro.testbed.sharding
.ShardedDetectorPool` per attached detector, so alert batches can be
partitioned by entity across independent shards (``n_shards``) and,
with the ``process`` backend, across worker processes -- bit-identical
to the unsharded path because detector state is strictly per-entity.

The pre-stage constructor and methods are kept as a thin facade: the
examples and the Fig. 4 / Fig. 5 benchmarks drive raw records (or
pre-normalised alerts) in batches exactly as before, and the pipeline
reports per-stage statistics so the 25 M -> 191 K reduction and the
detection/response latency can be measured on the same run.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Optional, Sequence

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.attack_tagger import AttackTagger, Detection
from ..core.detector import Detector
from ..telemetry.filtering import ScanFilter, ScanFilterStage
from ..telemetry.logsource import RawLogRecord
from ..telemetry.normalizer import AlertNormalizer, NormalizerStage
from .bhr import BHRClient, BlackHoleRouter
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .honeypot import Honeypot
from .mirror import TrafficMirror
from .responder import ResponseOrchestrator, ResponsePolicy
from .sharding import PoolCloseResult, ShardedDetectorPool
from .stages import DetectionStage, PipelineStage, ResponseStage


@dataclasses.dataclass
class PipelineStats:
    """Per-stage counters and timings for one pipeline run."""

    raw_records: int = 0
    normalized_alerts: int = 0
    filtered_alerts: int = 0
    detections: int = 0
    responses: int = 0
    #: Seconds spent in the detection stage only (response time is
    #: accounted separately in :attr:`response_seconds`).
    detection_seconds: float = 0.0
    response_seconds: float = 0.0
    #: Cumulative wall seconds per stage name (normalize/filter/detect/respond).
    stage_seconds: dict[str, float] = dataclasses.field(default_factory=dict)

    def add_stage_seconds(self, stage_name: str, seconds: float) -> None:
        """Accumulate one stage run's wall time."""
        self.stage_seconds[stage_name] = self.stage_seconds.get(stage_name, 0.0) + seconds
        if stage_name == DetectionStage.name:
            self.detection_seconds += seconds
        elif stage_name == ResponseStage.name:
            self.response_seconds += seconds

    @property
    def detection_throughput(self) -> float:
        """Filtered alerts consumed per second spent in the detection stage."""
        if self.detection_seconds <= 0.0:
            return 0.0
        return self.filtered_alerts / self.detection_seconds

    @property
    def normalization_drop_rate(self) -> float:
        """Fraction of raw records that produced no symbolic alert."""
        if self.raw_records == 0:
            return 0.0
        return 1.0 - self.normalized_alerts / self.raw_records

    @property
    def filter_reduction(self) -> float:
        """Alert volume reduction achieved by the scan filter.

        An empty input is no reduction (1.0); a filter that drops
        *every* alert is an infinite reduction, kept distinguishable
        from "no reduction" by reporting ``float("inf")``.
        """
        if self.normalized_alerts == 0:
            return 1.0
        if self.filtered_alerts == 0:
            return float("inf")
        return self.normalized_alerts / self.filtered_alerts


class TestbedPipeline:
    """The assembled testbed: mirror -> normalise -> filter -> detect -> respond.

    Parameters beyond the seed API:

    n_shards:
        Number of per-entity detector shards in the detection stage.
        ``1`` (default) with the ``serial`` backend drives the attached
        detector instances directly -- the seed behaviour.
    shard_backend:
        ``"serial"`` (deterministic, in-process; default) or
        ``"process"`` (one worker process per shard).  Both produce
        bit-identical detections; see :mod:`repro.testbed.sharding`.
        With ``n_shards > 1`` or the process backend, each shard is an
        independent clone of the attached (pristine) detector, and
        ``pipeline.detectors[name]`` is the
        :class:`~repro.testbed.sharding.ShardedDetectorPool` running
        them.  Call :meth:`close` (or use the pipeline as a context
        manager) to shut worker processes down.
    restart_policy / max_restarts / backoff_base / snapshot_every:
        Worker-death supervision for process-backed pools, passed
        through to :class:`~repro.testbed.sharding.ShardedDetectorPool`
        -- ``"raise"`` (default) surfaces deaths as typed errors;
        ``"restore"`` self-heals them from per-shard snapshots.
    transport:
        Sub-batch transport for process-backed pools: ``"pickle"``
        (default, pipe-pickled columns) or ``"shm"`` (zero-copy
        shared-memory rings with descriptor pipes; see
        :data:`repro.testbed.sharding.TRANSPORTS`).  Serial pools have
        no transport and ignore it.  Transport choice never changes
        detections -- the fuzz oracle's transport axis holds both
        bit-identical.
    max_inflight:
        Pipelining depth of the overlapped drivers: how many detection
        batches may be submitted-but-uncollected at once (default 1,
        the classic double-buffered schedule).  Deeper windows hide
        fan-out latency behind worker compute; detector controls still
        apply at fully-quiesced submission boundaries, so detections
        and counters stay bit-identical at any depth.
    ring_capacity:
        Per-shard shared-memory ring size in bytes for the ``"shm"``
        transport (default: the pool's
        :data:`~repro.testbed.shm_ring.DEFAULT_RING_CAPACITY`).  Size
        it to hold ``max_inflight`` encoded sub-batches; batches that
        do not fit fall back to the pickle path (counted in
        ``shm_fallbacks``), so undersizing costs throughput, never
        correctness.
    """

    #: Not a pytest test class (the name merely starts with "Test").
    __test__ = False

    def __init__(
        self,
        *,
        detectors: Optional[dict[str, Detector]] = None,
        vocabulary: Optional[AlertVocabulary] = None,
        honeypot: Optional[Honeypot] = None,
        router: Optional[BlackHoleRouter] = None,
        scan_filter: Optional[ScanFilter] = None,
        normalizer: Optional[AlertNormalizer] = None,
        response_policy: Optional[ResponsePolicy] = None,
        primary_detector: str = "factor_graph",
        n_shards: int = 1,
        shard_backend: str = "serial",
        restart_policy: str = "raise",
        max_restarts: int = 3,
        backoff_base: float = 0.05,
        snapshot_every: int = 1,
        transport: str = "pickle",
        max_inflight: int = 1,
        ring_capacity: Optional[int] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.honeypot = honeypot
        self.router = router or BlackHoleRouter()
        self.bhr_client = BHRClient(self.router)
        self.mirror = TrafficMirror()
        self.normalizer = normalizer or AlertNormalizer(self.vocabulary)
        self.scan_filter = scan_filter or ScanFilter(self.vocabulary)
        self.n_shards = int(n_shards)
        self.shard_backend = shard_backend
        self.restart_policy = restart_policy
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.snapshot_every = int(snapshot_every)
        self.transport = transport
        self.max_inflight = int(max_inflight)
        self.ring_capacity = ring_capacity
        templates: dict[str, Detector] = detectors or {
            "factor_graph": AttackTagger(vocabulary=self.vocabulary)
        }
        if primary_detector not in templates:
            primary_detector = next(iter(templates))
        self.primary_detector = primary_detector
        self.detector_pools: dict[str, ShardedDetectorPool] = {
            name: self._build_pool(detector) for name, detector in templates.items()
        }
        #: The detection layer per attached name: with the default
        #: single serial shard this is the very detector instance the
        #: caller passed in (seed behaviour); otherwise the pool.
        self.detectors: dict[str, Detector] = {
            name: (pool.shards[0] if self._is_facade_pool(pool) else pool)
            for name, pool in self.detector_pools.items()
        }
        self.responder = ResponseOrchestrator(
            self.bhr_client, honeypot=self.honeypot, policy=response_policy
        )
        self.stats = PipelineStats()
        self.detections: list[tuple[str, Detection]] = []
        # The stage chain (Fig. 4 left to right).
        self.normalizer_stage = NormalizerStage(self.normalizer)
        self.filter_stage = ScanFilterStage(self.scan_filter)
        self.detection_stage = DetectionStage(
            self.detector_pools, self.primary_detector, self.detections
        )
        self.response_stage = ResponseStage(self.responder)
        self.stages: list[PipelineStage] = [
            self.normalizer_stage,
            self.filter_stage,
            self.detection_stage,
            self.response_stage,
        ]
        self._pending_raw: list[RawLogRecord] = []
        self.mirror.subscribe_raw(self._pending_raw.append)
        # Detector control operations (entity reset, full reset, tier
        # reopen) requested while a detection batch is in flight; they
        # are applied after that batch is collected, immediately before
        # the next one is submitted (see :meth:`reset_entity`).
        self._deferred_controls: list[tuple[str, Optional[str]]] = []
        # Set by restore(): a pipeline restores at most once, and only
        # while pristine (see _require_pristine_for_restore).
        self._restored = False

    def _build_pool(self, detector: Detector) -> ShardedDetectorPool:
        if self.n_shards == 1 and self.shard_backend == "serial":
            return ShardedDetectorPool.wrap(detector)
        extra: dict = {}
        if self.ring_capacity is not None:
            extra["ring_capacity"] = self.ring_capacity
        return ShardedDetectorPool.from_template(
            detector,
            n_shards=self.n_shards,
            backend=self.shard_backend,
            restart_policy=self.restart_policy,
            max_restarts=self.max_restarts,
            backoff_base=self.backoff_base,
            snapshot_every=self.snapshot_every,
            transport=self.transport,
            max_inflight=self.max_inflight,
            **extra,
        )

    def _is_facade_pool(self, pool: ShardedDetectorPool) -> bool:
        return pool.n_shards == 1 and pool.backend == "serial"

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _run_stage(self, stage: PipelineStage, batch: Sequence) -> list:
        """Run one stage over a batch, accumulating its wall time."""
        started = time.perf_counter()
        out = stage.process(batch)
        self.stats.add_stage_seconds(stage.name, time.perf_counter() - started)
        return out

    # ------------------------------------------------------------------
    # Ingestion (batch-synchronous reference path)
    # ------------------------------------------------------------------
    def ingest_raw(self, records: Iterable[RawLogRecord]) -> list[Detection]:
        """Mirror raw monitor records and process them through every stage.

        Records published directly via ``pipeline.mirror.publish_raw``
        since the last ingestion are drained first, as their own batch,
        so the per-call statistics attribute every record to the call
        that processed it.
        """
        detections = self._drain_pending() if self._pending_raw else []
        for record in records:
            self.mirror.publish_raw(record)
        detections.extend(self._drain_pending())
        return detections

    def _take_pending_normalized(self) -> list[Alert]:
        """Swap out the pending raw records and normalise them (counted)."""
        records, self._pending_raw[:] = list(self._pending_raw), []
        self.stats.raw_records += len(records)
        alerts = self._run_stage(self.normalizer_stage, records)
        self.stats.normalized_alerts += len(alerts)
        return alerts

    def _drain_pending(self) -> list[Detection]:
        return self._process_alerts(self._take_pending_normalized())

    def ingest_alerts(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Ingest pre-normalised alerts (replayed incidents skip monitors).

        Raw records pending on the mirror are drained first (see
        :meth:`ingest_raw`) instead of silently waiting for a later
        ``ingest_raw`` call.
        """
        detections = self._drain_pending() if self._pending_raw else []
        alerts = list(alerts)
        self.stats.raw_records += len(alerts)
        self.stats.normalized_alerts += len(alerts)
        detections.extend(self._process_alerts(alerts))
        return detections

    # ------------------------------------------------------------------
    def _process_alerts(self, alerts: Sequence[Alert]) -> list[Detection]:
        # The batch-synchronous path is the overlapped schedule with
        # zero overlap: submit, then immediately collect and respond.
        # Sharing the tail (and the failure unwind) keeps the two
        # paths' accounting identical by construction.
        try:
            self._submit_detection(self._prep_filtered(alerts))
            return self._collect_and_respond()
        except BaseException:
            self._drain_inflight_detections()
            raise

    def _prep_filtered(self, alerts: Sequence[Alert]) -> list[Alert]:
        """Filter one normalised batch and publish the survivors."""
        filtered = self._run_stage(self.filter_stage, alerts)
        self.stats.filtered_alerts += len(filtered)
        for alert in filtered:
            self.mirror.publish_alert(alert)
        return filtered

    # ------------------------------------------------------------------
    # Ingestion (overlapped / double-buffered driver)
    # ------------------------------------------------------------------
    def ingest_raw_stream(
        self, batches: Iterable[Iterable[RawLogRecord]]
    ) -> list[Detection]:
        """Process a stream of raw-record batches with stage overlap.

        While the detection stage's (process-backed) shard workers chew
        batch N, the calling thread already normalises and filters
        batch N+1 (double buffering), so normalize/filter latency adds
        once per stream instead of once per batch.  Detections,
        responses, and all stats counters are bit-identical to looping
        :meth:`ingest_raw` over the same batches -- the normalize,
        filter, and detection stages each still see the batches in
        stream order, and no stage feeds state back into an earlier
        one.  Per-stage timings stay attributed to their stage: the
        parent's wait inside ``collect`` counts as detection time, the
        overlapped prep counts as normalize/filter time.
        """
        detections = self._drain_pending() if self._pending_raw else []
        detections.extend(self._drive_overlapped(self._prep_raw_batches(batches)))
        return detections

    def ingest_alert_batches(
        self, batches: Iterable[Iterable[Alert]]
    ) -> list[Detection]:
        """Overlapped driver over pre-normalised alert batches.

        The double-buffered counterpart of looping
        :meth:`ingest_alerts` (see :meth:`ingest_raw_stream`), with
        bit-identical detections, responses, and counters.
        """
        detections = self._drain_pending() if self._pending_raw else []
        detections.extend(self._drive_overlapped(self._prep_alert_batches(batches)))
        return detections

    def _prep_raw_batches(self, batches):
        """Mirror, normalise, and filter raw batches one at a time."""
        for records in batches:
            for record in records:
                self.mirror.publish_raw(record)
            yield self._prep_filtered(self._take_pending_normalized())

    def _prep_alert_batches(self, batches):
        """Count and filter pre-normalised batches one at a time."""
        for alerts in batches:
            alerts = list(alerts)
            self.stats.raw_records += len(alerts)
            self.stats.normalized_alerts += len(alerts)
            yield self._prep_filtered(alerts)

    def _drive_overlapped(self, filtered_batches) -> list[Detection]:
        """Pipelined schedule over prepped (filtered) batches.

        Advancing the ``filtered_batches`` generator preps the next
        batch; the loop keeps up to ``max_inflight`` detection batches
        submitted-but-uncollected, so prep *and* older batches' worker
        compute hide behind each other.  At the default depth 1 this is
        the classic double-buffered schedule::

            prep 1, submit 1, [prep 2, collect 1, respond 1, submit 2],
            [prep 3, collect 2, respond 2, submit 3], ..., collect B,
            respond B

        At depth ``k`` the window ramps up to ``k`` submits before the
        first collect, which lets shard workers desynchronise across
        batches (shard 0 may be two batches ahead of shard 1) -- the
        per-shard FIFO descriptor protocol and position-merge keep the
        output order identical.  Detector controls requested mid-stream
        need a fully-quiesced pool (``reset_entity`` et al. refuse with
        batches pending), so a pending control first drains the whole
        window -- exactly the stream position a depth-1 schedule or a
        batch-synchronous caller applies it at.
        """
        detections: list[Detection] = []
        depth = self.max_inflight
        try:
            inflight = 0
            for filtered in filtered_batches:
                # A deferred control must see an idle pool *and* sit at
                # the same submission boundary as in the depth-1
                # schedule: drain everything, then let the flush inside
                # _submit_detection apply it before this submit.
                while inflight and (self._deferred_controls or inflight >= depth):
                    inflight -= 1
                    detections.extend(self._collect_and_respond())
                self._submit_detection(filtered)
                inflight += 1
            while inflight:
                inflight -= 1
                detections.extend(self._collect_and_respond())
            # Controls requested while the final batch was in flight
            # (there is no further submit to flush them).
            self._flush_detector_controls()
            return detections
        except BaseException:
            self._drain_inflight_detections()
            raise

    def _drain_inflight_detections(self) -> None:
        """Finish every submitted-but-uncollected detection batch.

        A prep/submit/collect failure must not leave a batch in
        flight: a later ingestion call would otherwise collect the
        stale ticket and return the wrong batch's detections.
        Whatever was already submitted is finished normally (its
        detections land in the logs and counters; they cannot be
        returned since the caller is re-raising).
        """
        while self.detection_stage.pending_batches:
            try:
                self._collect_and_respond()
            except Exception:
                pass
        # Controls deferred behind those batches are applied now --
        # after their batch was collected, exactly the documented
        # position -- rather than leaking into a later, unrelated
        # ingestion call (or being dropped by close()).  The caller is
        # re-raising, so control failures must not mask that error.
        while self._deferred_controls:
            control = self._deferred_controls.pop(0)
            try:
                self._apply_detector_control(control)
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Detector control (entity reset / full reset / tier reopen)
    # ------------------------------------------------------------------
    def reset_entity(self, entity: str) -> None:
        """Forget one entity across every attached detector pool.

        Models remediation (the host was re-imaged, the account was
        re-credentialed): the detectors must stop carrying the entity's
        history.  Safe to call mid-stream from inside an overlapped
        driver's batch source: if a detection batch is in flight the
        reset is *deferred* and applied after that batch is collected,
        immediately before the next one is submitted -- the same
        position in the alert stream a batch-synchronous caller issuing
        the reset between the two batches observes, so the overlapped
        and synchronous schedules stay bit-identical.
        """
        self._queue_detector_control(("reset_entity", entity))

    def reset_detectors(self) -> None:
        """Forget all detector state (every pool), deferred-safe.

        The pipeline's cumulative detection log and stats counters are
        kept -- only the detectors' per-entity state and their own
        detection records are cleared.
        """
        self._queue_detector_control(("reset", None))

    def reopen_detectors(self) -> None:
        """Restart the detection tier (fresh state, fresh workers).

        Drives :meth:`repro.testbed.sharding.ShardedDetectorPool
        .reopen` on every pool: process-backed pools recycle their
        worker processes, serial pools reset their replicas in place.
        Deferred-safe like :meth:`reset_entity`.
        """
        self._queue_detector_control(("reopen", None))

    def reshard(self, n_shards: int) -> None:
        """Live N→M reshard of every detector pool, deferred-safe.

        Drives :meth:`repro.testbed.sharding.ShardedDetectorPool
        .reshard` on every pool: per-entity detector state is migrated
        wholesale to the shards that own it under the new count, so
        detections after the transition are bit-identical to a pipeline
        constructed with ``n_shards=M`` fed the same stream.  Like the
        other detector controls, a reshard requested while a detection
        batch is in flight is deferred to the next submission boundary
        (after that batch is collected, before the next is submitted) --
        the quiescing that keeps in-flight tickets and the migration
        strictly ordered.

        On success ``pipeline.n_shards`` and the ``detectors`` facade
        mapping are updated; a checkpoint taken afterwards records (and
        restore requires) the *new* shard count.  ``shard_backend`` is
        unchanged -- resharding moves state across shards, not across
        backends.
        """
        count = int(n_shards)
        if count < 1:
            raise ValueError("n_shards must be >= 1")
        self._queue_detector_control(("reshard", count))

    def _queue_detector_control(self, control: tuple[str, Optional[str]]) -> None:
        if self.detection_stage.pending_batches:
            self._deferred_controls.append(control)
        else:
            self._apply_detector_control(control)

    def _apply_detector_control(self, control: tuple[str, Optional[str]]) -> None:
        # Drive every pool even if one fails (mirroring
        # ShardedDetectorPool.reset across shards): side-by-side
        # detectors must never end up with a half-applied control.  The
        # first error is re-raised after all pools were driven.
        verb, payload = control
        error: Optional[Exception] = None
        for pool in self.detector_pools.values():
            try:
                if verb == "reset_entity":
                    pool.reset_entity(payload)
                elif verb == "reset":
                    pool.reset()
                elif verb == "reopen":
                    pool.reopen()
                elif verb == "reshard":
                    pool.reshard(payload)
                else:
                    raise ValueError(f"unknown detector control {verb!r}")
            except Exception as exc:
                if error is None:
                    error = exc
        if verb == "reshard":
            # The facade mapping must reflect the pools' real shape
            # even after a partial failure (pool.shards[0] only exists
            # for single-serial pools).
            self.detectors = {
                name: (pool.shards[0] if self._is_facade_pool(pool) else pool)
                for name, pool in self.detector_pools.items()
            }
            if error is None:
                self.n_shards = int(payload)
        if error is not None:
            raise error

    def _flush_detector_controls(self) -> None:
        """Apply controls deferred while a detection batch was in flight."""
        while self._deferred_controls:
            self._apply_detector_control(self._deferred_controls.pop(0))

    def _submit_detection(self, filtered: Sequence[Alert]) -> None:
        """Ship one filtered batch to the detection stage (timed)."""
        self._flush_detector_controls()
        started = time.perf_counter()
        self.detection_stage.submit(filtered)
        self.stats.add_stage_seconds(
            self.detection_stage.name, time.perf_counter() - started
        )

    def _collect_and_respond(self) -> list[Detection]:
        """Finish the in-flight detection batch and run the response stage."""
        started = time.perf_counter()
        new_detections = self.detection_stage.collect()
        self.stats.add_stage_seconds(
            self.detection_stage.name, time.perf_counter() - started
        )
        self.stats.detections += len(new_detections)
        actions = self._run_stage(self.response_stage, new_detections)
        self.stats.responses += len(actions)
        return new_detections

    # ------------------------------------------------------------------
    # Two-phase ingestion (the always-on service driver)
    # ------------------------------------------------------------------
    @property
    def inflight_detection_batches(self) -> int:
        """Submitted-but-uncollected detection batches."""
        return self.detection_stage.pending_batches

    def submit_alerts(self, alerts: Iterable[Alert]) -> None:
        """Phase 1: normalise-count, filter, and submit one alert batch.

        The public face of the overlapped schedule for callers that own
        the event loop themselves (the asyncio service in
        :mod:`repro.service`): ``submit_alerts`` ships the batch to the
        detection stage and returns; :meth:`collect_detections`
        finishes it.  Interleaving exactly one in-flight batch with
        other work reproduces the double-buffered driver's schedule, so
        detections, responses, and counters are bit-identical to
        :meth:`ingest_alerts` over the same batches.  Raw records
        published directly on the mirror are *not* drained here -- feed
        raw traffic through :meth:`submit_raw` instead.
        """
        alerts = list(alerts)
        self.stats.raw_records += len(alerts)
        self.stats.normalized_alerts += len(alerts)
        self._submit_detection(self._prep_filtered(alerts))

    def submit_raw(self, records: Iterable[RawLogRecord]) -> None:
        """Phase 1 for raw monitor records: mirror, normalise, filter, submit.

        Any records already pending on the mirror join this batch (the
        service is the only publisher in the service topology, so the
        pending list is normally empty).
        """
        for record in records:
            self.mirror.publish_raw(record)
        self._submit_detection(self._prep_filtered(self._take_pending_normalized()))

    def collect_detections(self) -> list[Detection]:
        """Phase 2: finish the oldest in-flight batch and respond.

        Returns the batch's detections (empty list when nothing is in
        flight, so drain loops can call it unconditionally).
        """
        if not self.detection_stage.pending_batches:
            return []
        return self._collect_and_respond()

    # ------------------------------------------------------------------
    # Scanner handling (black-hole path, separate from the model path)
    # ------------------------------------------------------------------
    def block_top_scanners(self, now: float, *, min_scans: int = 1000) -> int:
        """Automatically null-route sources that scanned heavily.

        Returns the number of sources blocked.  This is the BHR's
        automated mass-scanner handling; it never pages an operator.
        The sweep is incremental: the router feeds it only sources
        whose scan count is at/above ``min_scans`` *and* that scanned
        since the last sweep, instead of rescanning the full counter.
        A source that was blocked and went quiet is not revisited until
        it scans again; one that kept scanning while blocked is
        re-queued and re-blocked once its block expires.
        """
        blocked = 0
        still_blocked: list[str] = []
        for source_ip in sorted(self.router.drain_crossed_scanners(min_scans)):
            if self.router.is_blocked(source_ip, now):
                # Already blocked: keep the crossing signal so the source
                # is revisited (and re-blocked) once the block expires.
                still_blocked.append(source_ip)
                continue
            self.responder.handle_mass_scanner(
                now, source_ip, self.router.scan_counter[source_ip]
            )
            blocked += 1
        if still_blocked:
            self.router.requeue_crossed_scanners(min_scans, still_blocked)
        return blocked

    # ------------------------------------------------------------------
    def detections_by(self, detector_name: str) -> list[Detection]:
        """Detections emitted by one of the attached detectors."""
        return [d for name, d in self.detections if name == detector_name]

    def summary(self) -> dict[str, object]:
        """Flat summary used by the Fig. 4 benchmark table.

        All values are floats except ``stage_seconds``, the per-stage
        timing dict (stage name -> cumulative wall seconds).
        """
        return {
            "raw_records": float(self.stats.raw_records),
            "normalized_alerts": float(self.stats.normalized_alerts),
            "filtered_alerts": float(self.stats.filtered_alerts),
            "detections": float(self.stats.detections),
            "responses": float(self.stats.responses),
            "notifications": float(len(self.responder.notifications)),
            "blocked_sources": float(len(self.router.history)),
            "normalization_drop_rate": self.stats.normalization_drop_rate,
            "filter_reduction": self.stats.filter_reduction,
            "detection_throughput": self.stats.detection_throughput,
            "detection_seconds": self.stats.detection_seconds,
            # The slice of detection time spent inside vectorised decode
            # kernels (engine="batched"), summed across pools and shards;
            # 0.0 for per-alert engines.  Timing, so excluded from the
            # differential oracle's compared counters.
            "detect_kernel_seconds": sum(
                sum(pool.kernel_seconds) + pool.kernel_seconds_retired
                for pool in self.detector_pools.values()
            ),
            "response_seconds": self.stats.response_seconds,
            # Load-shedding and fault-domain accounting: the one place
            # admission control and operators read drop/recovery state.
            # The dropped counters are deterministic (a pure function of
            # buffer configuration and the stream) and compared by the
            # differential oracle; the recovery/reshard ops counters are
            # run-dependent and excluded.
            "dropped_raw": float(self.mirror.stats.dropped_raw),
            "dropped_alerts": float(self.mirror.stats.dropped_alerts),
            "recovery_attempts": float(
                sum(len(pool.recovery_log) for pool in self.detector_pools.values())
            ),
            "recoveries_healed": float(
                sum(
                    len(pool.recovery_log.healed)
                    for pool in self.detector_pools.values()
                )
            ),
            "reshard_events": float(
                sum(len(pool.reshard_log) for pool in self.detector_pools.values())
            ),
            # Zero-copy transport accounting: sub-batches shipped via
            # the shared-memory rings vs. batches that fell back to the
            # pipe (codec miss or ring full).  Run-dependent plumbing
            # telemetry (ring occupancy varies with scheduling), so
            # excluded from the oracle's compared counters.
            "shm_batches": float(
                sum(pool.shm_batches for pool in self.detector_pools.values())
            ),
            "shm_fallbacks": float(
                sum(pool.shm_fallbacks for pool in self.detector_pools.values())
            ),
            "stage_seconds": dict(self.stats.stage_seconds),
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def _checkpoint_config(self) -> dict[str, object]:
        """The structural fingerprint a checkpoint must match to restore."""
        return {
            "n_shards": self.n_shards,
            "shard_backend": self.shard_backend,
            "primary_detector": self.primary_detector,
            "pools": sorted(self.detector_pools),
            "has_honeypot": self.honeypot is not None,
        }

    def _checkpoint_payload(self) -> dict[str, object]:
        """Everything a pristine equal-config pipeline needs to continue.

        Sets are serialised as *sorted lists* so the payload bytes are a
        pure function of the pipeline state (checkpoint -> restore ->
        checkpoint is byte-identical); they are rebuilt as sets on
        restore.
        """
        return {
            "config": self._checkpoint_config(),
            "stats": self.stats,
            "detections": list(self.detections),
            "inflight_high_water": self.detection_stage.inflight_high_water,
            "pending_raw": list(self._pending_raw),
            "responder": {
                "notifications": list(self.responder.notifications),
                "actions": list(self.responder.actions),
                "quarantined_entities": sorted(self.responder.quarantined_entities),
            },
            "router": {
                "blocks": dict(self.router._blocks),
                "history": list(self.router._history),
                "scans": list(self.router._scans),
                "scan_counter": dict(self.router.scan_counter),
                "scan_watches": {
                    threshold: sorted(pending)
                    for threshold, pending in self.router._scan_watches.items()
                },
            },
            "audit_log": list(self.bhr_client.audit_log),
            "mirror": self.mirror.snapshot_state(),
            "filter_stats": self.scan_filter.stats,
            "honeypot": self.honeypot,
            "pools": {
                name: self.detector_pools[name].snapshot_state()
                for name in sorted(self.detector_pools)
            },
        }

    def checkpoint(self, path) -> int:
        """Atomically persist the pipeline's full state to ``path``.

        Snapshots every detector pool's per-entity state (pickled via
        the detectors' own ``__getstate__``), the response/BHR/mirror
        records, ``PipelineStats``, pending raw records, and the
        in-flight high-water mark, such that a pristine equal-config
        pipeline :meth:`restore`\\ d from the file replays the remaining
        stream to bit-identical detections, logs, and counters.
        Returns the checkpoint size in bytes.  Refuses to run with
        detection batches in flight (the snapshot would be neither
        before nor after them).
        """
        pending = self.detection_stage.pending_batches
        if pending:
            raise RuntimeError(
                f"cannot checkpoint with {pending} detection batch(es) in "
                "flight; collect them first"
            )
        return write_checkpoint(path, self._checkpoint_payload())

    def _require_pristine_for_restore(self) -> None:
        """A restore target must be freshly constructed (and equal-config).

        Restoring over live state would silently merge two histories;
        every divergence fails loudly with ``RuntimeError`` *before*
        any state is touched, so a refused restore leaves the pipeline
        exactly as it was.
        """
        if self._restored:
            raise RuntimeError("pipeline was already restored once")
        driven = (
            self.stats.raw_records
            or self.stats.normalized_alerts
            or self.stats.filtered_alerts
            or self.stats.detections
            or self.stats.responses
            or self.detections
            or self._pending_raw
            or self.detection_stage.pending_batches
            or self.mirror.stats.raw_records
            or self.mirror.stats.alerts
            or self.responder.notifications
            or self.responder.actions
        )
        if driven:
            raise RuntimeError(
                "cannot restore into a pipeline that has already processed "
                "traffic; restore() requires a freshly constructed pipeline"
            )

    def restore(self, path) -> None:
        """Load a :meth:`checkpoint` file into this (pristine) pipeline.

        The pipeline must be freshly constructed with the same
        structural configuration (shard count, backend, attached
        detector names, primary, honeypot presence) as the one that
        checkpointed -- a mismatch raises
        :class:`~repro.testbed.checkpoint.CheckpointError`; a pipeline
        that already processed traffic (or was already restored) raises
        ``RuntimeError``.  Both checks run before any state is touched.
        """
        payload = read_checkpoint(path)
        self._require_pristine_for_restore()
        config = self._checkpoint_config()
        if payload["config"] != config:
            raise CheckpointError(
                f"checkpoint config {payload['config']!r} does not match "
                f"this pipeline's config {config!r}"
            )
        # All validation passed: apply in place, preserving the object
        # identities the stages and external callers already hold (the
        # detections list is the detection stage's sink; the facade
        # detector is the caller's instance).
        self.stats = payload["stats"]
        self.detections[:] = payload["detections"]
        self.detection_stage.inflight_high_water = payload["inflight_high_water"]
        self._pending_raw[:] = payload["pending_raw"]
        responder_state = payload["responder"]
        self.responder.notifications[:] = responder_state["notifications"]
        self.responder.actions[:] = responder_state["actions"]
        self.responder.quarantined_entities.clear()
        self.responder.quarantined_entities.update(
            responder_state["quarantined_entities"]
        )
        router_state = payload["router"]
        self.router._blocks.clear()
        self.router._blocks.update(router_state["blocks"])
        self.router._history[:] = router_state["history"]
        self.router._scans[:] = router_state["scans"]
        self.router.scan_counter.clear()
        self.router.scan_counter.update(router_state["scan_counter"])
        self.router._scan_watches.clear()
        self.router._scan_watches.update(
            {
                threshold: set(pending)
                for threshold, pending in router_state["scan_watches"].items()
            }
        )
        self.bhr_client.audit_log[:] = payload["audit_log"]
        self.mirror.restore_state(payload["mirror"])
        self.scan_filter.stats = payload["filter_stats"]
        if self.honeypot is not None and payload["honeypot"] is not None:
            self.honeypot.__dict__.clear()
            self.honeypot.__dict__.update(payload["honeypot"].__dict__)
        for name, pool_state in payload["pools"].items():
            self.detector_pools[name].restore_state(pool_state)
        self._restored = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, timeout: float = 5.0) -> dict[str, PoolCloseResult]:
        """Shut down detector pools (worker processes, if any).

        Returns the per-pool :class:`~repro.testbed.sharding
        .PoolCloseResult` so callers can observe terminate/kill
        escalations; every wait is bounded by ``timeout`` seconds.
        """
        return {
            name: pool.close(timeout=timeout)
            for name, pool in self.detector_pools.items()
        }

    def __enter__(self) -> "TestbedPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["PipelineStats", "TestbedPipeline"]
