"""The end-to-end testbed pipeline (Fig. 4).

This module wires the whole workflow together::

    mixture of attack + benign traffic
        -> monitors (Zeek / syslog / auditd / osquery) produce raw records
        -> traffic mirror
        -> normalisation (raw record -> symbolic alert)
        -> alert filtering (scan suppression, dedup)
        -> detection models (factor graph, rule-based, ...)
        -> response & remediation (operator notification, BHR block,
           honeypot recycling)

:class:`TestbedPipeline` is the object the examples and the Fig. 4 / Fig. 5
benchmarks drive: raw records (or pre-normalised alerts) are ingested in
batches, and the pipeline reports per-stage statistics so the
25 M -> 191 K reduction and the detection/response latency can be
measured on the same run.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Optional, Sequence

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.attack_tagger import AttackTagger, Detection
from ..telemetry.filtering import ScanFilter
from ..telemetry.logsource import RawLogRecord
from ..telemetry.normalizer import AlertNormalizer
from .bhr import BHRClient, BlackHoleRouter
from .honeypot import Honeypot
from .mirror import TrafficMirror
from .responder import ResponseOrchestrator, ResponsePolicy


@dataclasses.dataclass
class PipelineStats:
    """Per-stage counters for one pipeline run."""

    raw_records: int = 0
    normalized_alerts: int = 0
    filtered_alerts: int = 0
    detections: int = 0
    responses: int = 0
    detection_seconds: float = 0.0

    @property
    def detection_throughput(self) -> float:
        """Filtered alerts consumed per second spent in the detection/response loop."""
        if self.detection_seconds <= 0.0:
            return 0.0
        return self.filtered_alerts / self.detection_seconds

    @property
    def normalization_drop_rate(self) -> float:
        """Fraction of raw records that produced no symbolic alert."""
        if self.raw_records == 0:
            return 0.0
        return 1.0 - self.normalized_alerts / self.raw_records

    @property
    def filter_reduction(self) -> float:
        """Alert volume reduction achieved by the scan filter."""
        if self.filtered_alerts == 0:
            return 0.0
        return self.normalized_alerts / self.filtered_alerts


class TestbedPipeline:
    """The assembled testbed: mirror -> normalise -> filter -> detect -> respond."""

    #: Not a pytest test class (the name merely starts with "Test").
    __test__ = False

    def __init__(
        self,
        *,
        detectors: Optional[dict[str, object]] = None,
        vocabulary: Optional[AlertVocabulary] = None,
        honeypot: Optional[Honeypot] = None,
        router: Optional[BlackHoleRouter] = None,
        scan_filter: Optional[ScanFilter] = None,
        normalizer: Optional[AlertNormalizer] = None,
        response_policy: Optional[ResponsePolicy] = None,
        primary_detector: str = "factor_graph",
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.honeypot = honeypot
        self.router = router or BlackHoleRouter()
        self.bhr_client = BHRClient(self.router)
        self.mirror = TrafficMirror()
        self.normalizer = normalizer or AlertNormalizer(self.vocabulary)
        self.scan_filter = scan_filter or ScanFilter(self.vocabulary)
        self.detectors: dict[str, object] = detectors or {
            "factor_graph": AttackTagger(vocabulary=self.vocabulary)
        }
        if primary_detector not in self.detectors:
            primary_detector = next(iter(self.detectors))
        self.primary_detector = primary_detector
        self.responder = ResponseOrchestrator(
            self.bhr_client, honeypot=self.honeypot, policy=response_policy
        )
        self.stats = PipelineStats()
        self.detections: list[tuple[str, Detection]] = []
        self._pending_raw: list[RawLogRecord] = []
        self.mirror.subscribe_raw(self._pending_raw.append)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest_raw(self, records: Iterable[RawLogRecord]) -> list[Detection]:
        """Mirror raw monitor records and process them through every stage."""
        for record in records:
            self.mirror.publish_raw(record)
        return self._drain_pending()

    def _drain_pending(self) -> list[Detection]:
        records, self._pending_raw[:] = list(self._pending_raw), []
        self.stats.raw_records += len(records)
        alerts = self.normalizer.normalize_stream(records)
        self.stats.normalized_alerts += len(alerts)
        return self._process_alerts(alerts)

    def ingest_alerts(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Ingest pre-normalised alerts (replayed incidents skip monitors)."""
        alerts = list(alerts)
        self.stats.raw_records += len(alerts)
        self.stats.normalized_alerts += len(alerts)
        return self._process_alerts(alerts)

    # ------------------------------------------------------------------
    def _process_alerts(self, alerts: Sequence[Alert]) -> list[Detection]:
        filtered = self.scan_filter.filter(alerts)
        self.stats.filtered_alerts += len(filtered)
        for alert in filtered:
            self.mirror.publish_alert(alert)
        new_detections: list[Detection] = []
        started = time.perf_counter()
        for name, detector in self.detectors.items():
            for alert in filtered:
                detection = detector.observe(alert)  # type: ignore[attr-defined]
                if detection is None:
                    continue
                self.detections.append((name, detection))
                if name == self.primary_detector:
                    new_detections.append(detection)
                    actions = self.responder.handle_detection(detection)
                    self.stats.responses += len(actions)
        self.stats.detection_seconds += time.perf_counter() - started
        self.stats.detections += len(new_detections)
        return new_detections

    # ------------------------------------------------------------------
    # Scanner handling (black-hole path, separate from the model path)
    # ------------------------------------------------------------------
    def block_top_scanners(self, now: float, *, min_scans: int = 1000) -> int:
        """Automatically null-route sources that scanned heavily.

        Returns the number of sources blocked.  This is the BHR's
        automated mass-scanner handling; it never pages an operator.
        """
        blocked = 0
        for source_ip, count in self.router.scan_counter.items():
            if count >= min_scans and not self.router.is_blocked(source_ip, now):
                self.responder.handle_mass_scanner(now, source_ip, count)
                blocked += 1
        return blocked

    # ------------------------------------------------------------------
    def detections_by(self, detector_name: str) -> list[Detection]:
        """Detections emitted by one of the attached detectors."""
        return [d for name, d in self.detections if name == detector_name]

    def summary(self) -> dict[str, float]:
        """Flat summary used by the Fig. 4 benchmark table."""
        return {
            "raw_records": float(self.stats.raw_records),
            "normalized_alerts": float(self.stats.normalized_alerts),
            "filtered_alerts": float(self.stats.filtered_alerts),
            "detections": float(self.stats.detections),
            "responses": float(self.stats.responses),
            "notifications": float(len(self.responder.notifications)),
            "blocked_sources": float(len(self.router.history)),
            "normalization_drop_rate": self.stats.normalization_drop_rate,
            "filter_reduction": self.stats.filter_reduction,
            "detection_throughput": self.stats.detection_throughput,
        }


__all__ = ["PipelineStats", "TestbedPipeline"]
