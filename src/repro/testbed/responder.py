"""Response and remediation: operator notification, blocking, quarantine.

Fig. 4's final stage is "Response and Remediation": once a detector
tags an entity malicious, the testbed notifies the security operators
and, through the Black Hole Router's API, null-routes the attacker's
address; compromised honeypot instances are recycled.  The paper's case
study is exactly this path -- the factor-graph model's detection of the
ransomware's C2 attempt produced an operator notification twelve days
before the equivalent production incident.

:class:`ResponseOrchestrator` implements that policy over the BHR
client, the honeypot lifecycle manager, and a notification log that
doubles as the operators' timeline.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from ..core.attack_tagger import Detection
from .bhr import BHRClient
from .honeypot import Honeypot


class ResponseAction(enum.Enum):
    """Actions the responder can take."""

    NOTIFY_OPERATORS = "notify_operators"
    BLOCK_SOURCE = "block_source"
    QUARANTINE_ENTITY = "quarantine_entity"
    RECYCLE_HONEYPOT = "recycle_honeypot"


@dataclasses.dataclass(frozen=True)
class OperatorNotification:
    """One notification delivered to the security operators."""

    timestamp: float
    entity: str
    summary: str
    detection: Detection
    severity: str = "high"


@dataclasses.dataclass(frozen=True)
class ResponseRecord:
    """One action taken in response to a detection."""

    timestamp: float
    action: ResponseAction
    target: str
    detail: str = ""


@dataclasses.dataclass
class ResponsePolicy:
    """Tunable response policy."""

    block_attacker_ips: bool = True
    block_duration_seconds: Optional[float] = 30 * 86_400.0
    quarantine_entities: bool = True
    recycle_honeypot_instances: bool = True
    scanner_block_duration_seconds: float = 86_400.0


class ResponseOrchestrator:
    """Turns detections into notifications, blocks and quarantines."""

    def __init__(
        self,
        bhr_client: BHRClient,
        *,
        honeypot: Optional[Honeypot] = None,
        policy: Optional[ResponsePolicy] = None,
    ) -> None:
        self.bhr = bhr_client
        self.honeypot = honeypot
        self.policy = policy or ResponsePolicy()
        self.notifications: list[OperatorNotification] = []
        self.actions: list[ResponseRecord] = []
        self.quarantined_entities: set[str] = set()

    # ------------------------------------------------------------------
    def handle_detection(self, detection: Detection) -> list[ResponseRecord]:
        """Respond to one detection; returns the actions taken."""
        taken: list[ResponseRecord] = []
        now = detection.timestamp
        summary = (
            f"Entity {detection.entity} tagged malicious "
            f"(confidence {detection.confidence:.2f}, trigger {detection.trigger.name})"
        )
        self.notifications.append(
            OperatorNotification(
                timestamp=now, entity=detection.entity, summary=summary, detection=detection
            )
        )
        taken.append(
            ResponseRecord(now, ResponseAction.NOTIFY_OPERATORS, detection.entity, summary)
        )

        source_ip = detection.trigger.source_ip
        if self.policy.block_attacker_ips and source_ip:
            self.bhr.block(
                source_ip,
                reason=f"attack detected against {detection.entity}",
                now=now,
                duration_seconds=self.policy.block_duration_seconds,
            )
            taken.append(ResponseRecord(now, ResponseAction.BLOCK_SOURCE, source_ip))

        if self.policy.quarantine_entities:
            self.quarantined_entities.add(detection.entity)
            taken.append(ResponseRecord(now, ResponseAction.QUARANTINE_ENTITY, detection.entity))

        if self.policy.recycle_honeypot_instances and self.honeypot is not None:
            recycled = self.honeypot.recycle_compromised(now)
            if recycled:
                taken.append(
                    ResponseRecord(
                        now, ResponseAction.RECYCLE_HONEYPOT, "honeypot", f"recycled {recycled} instance(s)"
                    )
                )

        self.actions.extend(taken)
        return taken

    def handle_mass_scanner(self, timestamp: float, source_ip: str, scan_count: int) -> ResponseRecord:
        """Short automatic block for a mass scanner (no operator page)."""
        self.bhr.block(
            source_ip,
            reason=f"mass scanning ({scan_count} probes)",
            now=timestamp,
            duration_seconds=self.policy.scanner_block_duration_seconds,
        )
        record = ResponseRecord(timestamp, ResponseAction.BLOCK_SOURCE, source_ip, "mass scanner")
        self.actions.append(record)
        return record

    # ------------------------------------------------------------------
    def is_quarantined(self, entity: str) -> bool:
        """Whether an entity has been quarantined."""
        return entity in self.quarantined_entities

    def notification_timeline(self) -> list[tuple[float, str]]:
        """(timestamp, summary) pairs, in delivery order."""
        return [(n.timestamp, n.summary) for n in self.notifications]


__all__ = [
    "ResponseAction",
    "OperatorNotification",
    "ResponseRecord",
    "ResponsePolicy",
    "ResponseOrchestrator",
]
