"""Discrete-event simulation engine for the testbed.

Everything time-dependent in the testbed -- honeypot VM lifecycles,
attack scenarios, traffic mirroring, black-hole-route expiry -- runs on
a single discrete-event scheduler so experiments are deterministic and
fast (no wall-clock sleeping).  The engine is a classic priority-queue
simulator: events carry a firing time, a priority for tie-breaking, and
a callback.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, Optional


@dataclasses.dataclass(order=True)
class _QueuedEvent:
    """Internal heap entry (ordered by time, then priority, then sequence)."""

    time: float
    priority: int
    sequence: int
    callback: Callable[["Simulator"], Any] = dataclasses.field(compare=False)
    label: str = dataclasses.field(compare=False, default="")
    cancelled: bool = dataclasses.field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _QueuedEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def label(self) -> str:
        """Human-readable label."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event (no-op if it already fired)."""
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueuedEvent] = []
        self._sequence = itertools.count()
        self._fired = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def fired(self) -> int:
        """Number of events executed so far."""
        return self._fired

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[["Simulator"], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = _QueuedEvent(
            time=self._now + delay,
            priority=priority,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self,
        time: float,
        callback: Callable[["Simulator"], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(max(0.0, time - self._now), callback, priority=priority, label=label)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[["Simulator"], Any],
        *,
        label: str = "",
        max_firings: Optional[int] = None,
    ) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds.

        The callback may return ``False`` to stop the recurrence.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"count": 0}

        def _fire(sim: "Simulator") -> None:
            state["count"] += 1
            result = callback(sim)
            if result is False:
                return
            if max_firings is not None and state["count"] >= max_firings:
                return
            sim.schedule(interval, _fire, label=label)

        return self.schedule(interval, _fire, label=label)

    # -- execution ---------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(self)
            self._fired += 1
            return True
        return False

    def run(self, *, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue empties, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events executed by this call.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_event = self._queue[0]
            if next_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and next_event.time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
        if not self._queue and until is not None and self._now < until:
            self._now = until
        return executed

    def advance(self, seconds: float) -> int:
        """Run for ``seconds`` of simulated time from now."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        return self.run(until=self._now + seconds)


__all__ = ["Simulator", "EventHandle"]
