"""Vulnerable service models hosted in the honeypot.

The honeypot's bait is a set of deliberately vulnerable services --
chiefly a semi-open PostgreSQL database whose credentials are
"accidentally" published, plus an SSH service accepting advertised
default credentials.  The services are modelled as small state machines
that accept attacker actions (connection attempts, queries, command
execution) and emit the corresponding monitor records through the
host's Zeek / syslog / auditd / osquery monitors, which is how attacker
behaviour becomes visible to the detection pipeline.

The PostgreSQL model implements exactly the primitives the ransomware
case study uses: version reconnaissance (``SHOW server_version_num``),
``largeobject`` staging of an ELF payload (hex ``7F454C46...``), and
``lo_export``-style file drops to ``/tmp``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Sequence

from ..telemetry.auditd import AuditdMonitor
from ..telemetry.osquery import OsqueryMonitor
from ..telemetry.syslog import SyslogMonitor
from ..telemetry.zeek import ZeekMonitor

#: Magic number of an ELF executable, as it appears in the staged payload.
ELF_MAGIC_HEX = "7f454c46"


class ServiceState(enum.Enum):
    """Lifecycle state of a vulnerable service instance."""

    RUNNING = "running"
    COMPROMISED = "compromised"
    STOPPED = "stopped"


@dataclasses.dataclass
class ServiceMonitors:
    """The per-host monitor bundle a service reports through."""

    zeek: ZeekMonitor
    syslog: SyslogMonitor
    auditd: AuditdMonitor
    osquery: OsqueryMonitor

    @classmethod
    def for_host(cls, host: str, *, zeek: Optional[ZeekMonitor] = None) -> "ServiceMonitors":
        """Build a monitor bundle for ``host`` (sharing a Zeek cluster if given)."""
        return cls(
            zeek=zeek or ZeekMonitor(),
            syslog=SyslogMonitor(host),
            auditd=AuditdMonitor(host),
            osquery=OsqueryMonitor(host),
        )


@dataclasses.dataclass(frozen=True)
class QueryResult:
    """Result of a database query issued by an attacker or a user."""

    ok: bool
    rows: tuple[str, ...] = ()
    error: str = ""


class VulnerableService:
    """Base class for honeypot services."""

    def __init__(self, host: str, address: str, port: int, monitors: ServiceMonitors) -> None:
        self.host = host
        self.address = address
        self.port = port
        self.monitors = monitors
        self.state = ServiceState.RUNNING
        self.connections = 0

    def record_probe(self, ts: float, source_ip: str) -> None:
        """An unauthenticated probe (half-open connection) hit the service."""
        self.monitors.zeek.record_connection(
            ts, source_ip, 54321, self.address, self.port, conn_state="S0", service=self.name
        )

    @property
    def name(self) -> str:
        """Service protocol name used in Zeek's service column."""
        raise NotImplementedError

    def stop(self) -> None:
        """Stop the service (remediation)."""
        self.state = ServiceState.STOPPED


class PostgresHoneypotService(VulnerableService):
    """Semi-open PostgreSQL instance with advertised default credentials."""

    def __init__(
        self,
        host: str,
        address: str,
        monitors: ServiceMonitors,
        *,
        port: int = 5432,
        advertised_credentials: tuple[str, str] = ("postgres", "postgres"),
        server_version_num: str = "90624",
    ) -> None:
        super().__init__(host, address, port, monitors)
        self.advertised_credentials = advertised_credentials
        self.server_version_num = server_version_num
        self.large_objects: dict[int, str] = {}
        self.exported_files: list[str] = []
        self.authenticated_sessions: list[str] = []

    @property
    def name(self) -> str:
        return "postgresql"

    # -- attacker-visible primitives ------------------------------------------
    def login(self, ts: float, source_ip: str, user: str, password: str) -> bool:
        """Attempt to authenticate; default credentials always succeed."""
        self.connections += 1
        self.monitors.zeek.record_connection(
            ts, source_ip, 40000 + self.connections, self.address, self.port,
            service=self.name, conn_state="SF", duration=1.2, orig_bytes=320, resp_bytes=1480,
        )
        if (user, password) == self.advertised_credentials:
            self.authenticated_sessions.append(source_ip)
            self.monitors.zeek.raise_notice(
                ts, "DB::Default_Credential",
                f"default credential login user={user}", orig_h=source_ip,
                resp_h=self.address, port=self.port,
            )
            self.state = ServiceState.COMPROMISED
            return True
        self.monitors.syslog.sshd_failed(ts, user, source_ip)
        return False

    def query(self, ts: float, source_ip: str, sql: str) -> QueryResult:
        """Execute a SQL statement issued by an authenticated session."""
        if source_ip not in self.authenticated_sessions:
            return QueryResult(ok=False, error="not authenticated")
        sql_lower = sql.strip().lower()
        if sql_lower.startswith("show server_version_num"):
            self.monitors.zeek.raise_notice(
                ts, "DB::Version_Probe", "SHOW server_version_num",
                orig_h=source_ip, resp_h=self.address, port=self.port,
            )
            return QueryResult(ok=True, rows=(self.server_version_num,))
        if "lo_create" in sql_lower or "lowrite" in sql_lower or "largeobject" in sql_lower:
            object_id = len(self.large_objects) + 16384
            payload_hex = sql.split("'")[-2] if "'" in sql else ""
            self.large_objects[object_id] = payload_hex
            if payload_hex.lower().startswith(ELF_MAGIC_HEX):
                self.monitors.zeek.raise_notice(
                    ts, "DB::LargeObject_Payload",
                    "ELF magic in largeobject write", orig_h=source_ip,
                    resp_h=self.address, port=self.port,
                )
            return QueryResult(ok=True, rows=(str(object_id),))
        if "lo_export" in sql_lower or "io_export" in sql_lower:
            path = sql.split("'")[-2] if "'" in sql else "/tmp/kp"
            self.exported_files.append(path)
            self.monitors.zeek.raise_notice(
                ts, "DB::File_Export", f"largeobject exported to {path}",
                orig_h=source_ip, resp_h=self.address, port=self.port,
            )
            self.monitors.osquery.file_event(ts, path, action="CREATED", sha256="e7945e" + "0" * 58)
            self.monitors.auditd.file_write(ts, "postgres", path)
            return QueryResult(ok=True, rows=(path,))
        if sql_lower.startswith(("drop table", "truncate")):
            self.monitors.zeek.raise_notice(
                ts, "DB::Drop_Burst", "bulk table drop", orig_h=source_ip,
                resp_h=self.address, port=self.port,
            )
            return QueryResult(ok=True)
        if sql_lower.startswith(("select", "insert", "update", "create")):
            return QueryResult(ok=True, rows=("ok",))
        return QueryResult(ok=False, error=f"unsupported statement: {sql[:40]}")

    def execute_exported_payload(self, ts: float, path: str = "/tmp/kp") -> None:
        """The dropped payload is executed on the database host."""
        self.monitors.auditd.execve(ts, "postgres", path, success=True)
        self.monitors.osquery.process_event(ts, "postgres", path, f"{path} --daemon")


class SSHHoneypotService(VulnerableService):
    """SSH service accepting advertised (weak) credentials."""

    def __init__(
        self,
        host: str,
        address: str,
        monitors: ServiceMonitors,
        *,
        port: int = 22,
        weak_accounts: Sequence[tuple[str, str]] = (("admin", "admin"),),
    ) -> None:
        super().__init__(host, address, port, monitors)
        self.weak_accounts = {user: password for user, password in weak_accounts}
        self.sessions: list[str] = []

    @property
    def name(self) -> str:
        return "ssh"

    def attempt_login(self, ts: float, source_ip: str, user: str, password: str) -> bool:
        """Attempt an SSH password login."""
        self.connections += 1
        self.monitors.zeek.record_connection(
            ts, source_ip, 50000 + self.connections, self.address, self.port,
            service=self.name, conn_state="SF", duration=0.8,
        )
        if self.weak_accounts.get(user) == password:
            self.monitors.syslog.sshd_accepted(ts, user, source_ip)
            self.sessions.append(source_ip)
            self.state = ServiceState.COMPROMISED
            return True
        self.monitors.syslog.sshd_failed(ts, user, source_ip)
        return False

    def run_command(self, ts: float, user: str, command: str) -> None:
        """A logged-in attacker runs a shell command."""
        self.monitors.syslog.command_executed(ts, user, command)
        self.monitors.osquery.process_event(ts, user, "/bin/bash", command)


class WebApplicationService(VulnerableService):
    """A web application with a remote-code-execution vulnerability."""

    def __init__(
        self,
        host: str,
        address: str,
        monitors: ServiceMonitors,
        *,
        port: int = 8080,
        vulnerable: bool = True,
    ) -> None:
        super().__init__(host, address, port, monitors)
        self.vulnerable = vulnerable
        self.executed_payloads: list[str] = []

    @property
    def name(self) -> str:
        return "http"

    def exploit(self, ts: float, source_ip: str, payload: str) -> bool:
        """Attempt an RCE exploit (Struts-style OGNL injection)."""
        self.connections += 1
        self.monitors.zeek.record_connection(
            ts, source_ip, 60000 + self.connections, self.address, self.port,
            service=self.name, conn_state="SF",
        )
        if not self.vulnerable:
            return False
        self.executed_payloads.append(payload)
        self.monitors.zeek.raise_notice(
            ts, "RCE::Exploit", f"remote command execution: {payload[:40]}",
            orig_h=source_ip, resp_h=self.address, port=self.port,
        )
        self.monitors.osquery.process_event(ts, "tomcat", "/bin/sh", payload)
        self.state = ServiceState.COMPROMISED
        return True


__all__ = [
    "ELF_MAGIC_HEX",
    "ServiceState",
    "ServiceMonitors",
    "QueryResult",
    "VulnerableService",
    "PostgresHoneypotService",
    "SSHHoneypotService",
    "WebApplicationService",
]
