"""Per-entity sharded detection: the pipeline's parallel detection layer.

All detector state is per-entity (PR 1 moved every piece of mutable
inference state into per-entity :class:`repro.core.streaming
.StreamingDecoder` instances), so the alert stream can be partitioned
by entity across independent detector replicas without changing a
single decode: entities never share state, therefore a detector that
only ever sees the sub-stream of "its" entities produces bit-identical
detections for them.

**Shard routing invariant.**  An alert for entity ``e`` is always
routed to shard ``crc32(e) % n_shards``.  The hash is ``zlib.crc32``
(not Python's salted ``hash``) so the assignment is stable across
processes and runs -- a requirement both for the process backend
(parent and workers must agree without coordination) and for
reproducible benchmarks.  Because routing is a pure function of the
entity, every alert of an entity lands on the same shard in stream
order, which is all the exactness argument needs.

Two execution backends share the same routing and merge logic:

* ``serial`` (default) -- ``n_shards`` detector replicas in the calling
  process, processed shard-by-shard.  Deterministic, dependency-free,
  and the reference the process backend is tested against.
* ``process`` -- one persistent worker process per shard, fed alert
  sub-batches over pipes.  Workers hold their detector replica for the
  lifetime of the pool (detector state must persist across batches), so
  the per-batch cost is pickling the sub-batches, not detector state.

Detections from all shards are merged back into the position order of
the input stream (equal to timestamp order for the time-sorted batches
the scan filter emits), making both backends' output bit-identical to
an unsharded detector consuming the same batch.
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing
import time
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.alerts import Alert
from ..core.attack_tagger import Detection
from ..core.detector import Detector

#: Supported execution backends.
BACKENDS = ("serial", "process")


def shard_of(entity: str, n_shards: int) -> int:
    """The shard an entity's alerts are routed to (stable across processes)."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(entity.encode("utf-8")) % n_shards


@dataclasses.dataclass(frozen=True)
class _IdentityFactory:
    """``wrap()``'s factory: hands out the wrapped instance itself.

    Only valid for a single serial shard -- every call returns the
    *same* object, which is exactly what the facade path wants (the
    caller's detector instance keeps doing the work) and wrong for any
    real fan-out.
    """

    detector: Detector

    def __call__(self) -> Detector:
        return self.detector


@dataclasses.dataclass(frozen=True)
class DetectorTemplate:
    """Picklable detector factory: deep-copies a pristine template.

    ``AttackTagger.clone()`` is used when available (it shares the
    read-only parameter tables instead of copying them); other
    detectors fall back to :func:`copy.deepcopy`.  Being a plain frozen
    dataclass, the factory pickles cleanly into worker processes.
    """

    template: Detector

    def __call__(self) -> Detector:
        clone = getattr(self.template, "clone", None)
        if callable(clone):
            return clone()
        return copy.deepcopy(self.template)


def _shard_worker_main(factory, connection) -> None:
    """Worker loop of one process shard: owns a detector replica.

    Commands arrive as ``(verb, payload)`` tuples; every command is
    answered with exactly one reply so the parent can run a simple
    send-all / receive-all round per batch.  ``observe`` replies with
    ``(hits, busy_seconds)`` where ``hits`` are ``(position, detection)``
    pairs indexed into the received sub-batch and ``busy_seconds`` is
    the CPU time the observe loop consumed (used by the sharding
    benchmark's critical-path metric).
    """
    detector = factory()
    try:
        while True:
            command, payload = connection.recv()
            if command == "observe":
                started = time.process_time()
                hits: List[Tuple[int, Detection]] = []
                for position, alert in enumerate(payload):
                    detection = detector.observe(alert)
                    if detection is not None:
                        hits.append((position, detection))
                connection.send((hits, time.process_time() - started))
            elif command == "reset_entity":
                detector.reset_entity(payload)
                connection.send(None)
            elif command == "reset":
                detector.reset()
                connection.send(None)
            elif command == "close":
                connection.send(None)
                return
            else:  # defensive: unknown verbs must not wedge the parent
                connection.send(None)
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass


class _ProcessShard:
    """Parent-side handle of one worker process."""

    def __init__(self, factory: DetectorTemplate) -> None:
        context = multiprocessing.get_context()
        self.connection, child_connection = context.Pipe()
        self.process = context.Process(
            target=_shard_worker_main,
            args=(factory, child_connection),
            daemon=True,
        )
        self.process.start()
        child_connection.close()

    def send(self, command: str, payload=None) -> None:
        self.connection.send((command, payload))

    def receive(self):
        return self.connection.recv()

    def close(self) -> None:
        try:
            if self.process.is_alive():
                self.send("close")
                self.receive()
            self.process.join(timeout=5.0)
        except (BrokenPipeError, EOFError, OSError):
            pass
        finally:
            self.connection.close()
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.terminate()


class ShardedDetectorPool:
    """Entity-sharded detection layer satisfying the ``Detector`` protocol.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable producing one pristine detector replica
        per shard.  Must be picklable for the process backend
        (:class:`DetectorTemplate` wraps an existing instance).
    n_shards:
        Number of independent shards (>= 1).
    backend:
        ``"serial"`` or ``"process"`` (see module docstring).

    The pool accumulates the merged detection stream itself, so
    ``pool.detections`` is equivalent to the unsharded detector's
    ``detections`` regardless of backend.
    """

    def __init__(
        self,
        detector_factory,
        *,
        n_shards: int = 1,
        backend: str = "serial",
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        self.n_shards = int(n_shards)
        self.backend = backend
        self.detector_factory = detector_factory
        self._detections: List[Detection] = []
        # entity -> shard memo; `shard_of()` stays the documented source
        # of truth (the cache is populated from it and never diverges:
        # routing is a pure function of the entity and the fixed shard
        # count), it just spares hot entities a crc32 per alert.
        self._shard_cache: Dict[str, int] = {}
        #: Alerts routed to each shard (routing balance introspection).
        self.alerts_routed: List[int] = [0] * self.n_shards
        #: Cumulative seconds each shard spent observing (serial: wall
        #: time in the caller; process: worker CPU time).
        self.busy_seconds: List[float] = [0.0] * self.n_shards
        self.shards: List[Detector] = []
        self._workers: List[_ProcessShard] = []
        self._closed = False
        if backend == "serial":
            self.shards = [detector_factory() for _ in range(self.n_shards)]
        else:
            self._workers = [
                _ProcessShard(detector_factory) for _ in range(self.n_shards)
            ]

    @classmethod
    def wrap(cls, detector: Detector) -> "ShardedDetectorPool":
        """Single serial shard around an *existing* detector instance.

        This is the facade path: the pipeline's default configuration
        (``n_shards=1``) keeps driving the very detector object the
        caller constructed (no clone, no copy), so external references
        observe its state.
        """
        return cls(_IdentityFactory(detector), n_shards=1, backend="serial")

    @classmethod
    def from_template(
        cls,
        detector: Detector,
        *,
        n_shards: int = 1,
        backend: str = "serial",
    ) -> "ShardedDetectorPool":
        """Pool whose shards are clones of a pristine template detector."""
        return cls(DetectorTemplate(detector), n_shards=n_shards, backend=backend)

    #: Entity->shard memo entries kept before the cache is dropped and
    #: rebuilt (bounds parent-process memory on high-cardinality
    #: entity streams; routing stays correct either way).
    _SHARD_CACHE_LIMIT = 1 << 20

    # -- routing -----------------------------------------------------------
    def shard_of(self, entity: str) -> int:
        """The shard the entity's alerts are routed to (memoised)."""
        shard = self._shard_cache.get(entity)
        if shard is None:
            if len(self._shard_cache) >= self._SHARD_CACHE_LIMIT:
                self._shard_cache.clear()
            shard = shard_of(entity, self.n_shards)
            self._shard_cache[entity] = shard
        return shard

    def _partition(
        self, alerts: Sequence[Alert]
    ) -> Tuple[List[List[Alert]], List[List[int]]]:
        """Split one batch into per-shard sub-batches, remembering positions."""
        sub_batches: List[List[Alert]] = [[] for _ in range(self.n_shards)]
        positions: List[List[int]] = [[] for _ in range(self.n_shards)]
        memo = self.shard_of
        for position, alert in enumerate(alerts):
            shard = memo(alert.entity)
            sub_batches[shard].append(alert)
            positions[shard].append(position)
        return sub_batches, positions

    # -- Detector protocol -------------------------------------------------
    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far, merged into stream order."""
        return list(self._detections)

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Route one alert to its shard; return a detection if one fires."""
        found = self.observe_batch([alert])
        return found[0] if found else None

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Fan one batch out across the shards and merge the detections.

        Detections come back tagged with their triggering alert's
        position in the batch and are merged in that order -- exactly
        the emission order of an unsharded detector scanning the batch
        front to back (and timestamp order for time-sorted batches).
        """
        batch = list(alerts)
        if not batch:
            return []
        if self._closed:
            raise RuntimeError("ShardedDetectorPool is closed")
        sub_batches, positions = self._partition(batch)
        for shard, sub_batch in enumerate(sub_batches):
            self.alerts_routed[shard] += len(sub_batch)
        hits: List[Tuple[int, Detection]] = []
        if self.backend == "serial":
            for shard, sub_batch in enumerate(sub_batches):
                if not sub_batch:
                    continue
                started = time.perf_counter()
                detector = self.shards[shard]
                for local, alert in enumerate(sub_batch):
                    detection = detector.observe(alert)
                    if detection is not None:
                        hits.append((positions[shard][local], detection))
                self.busy_seconds[shard] += time.perf_counter() - started
        else:
            active = [
                shard for shard, sub_batch in enumerate(sub_batches) if sub_batch
            ]
            # Send everything first so all workers compute concurrently.
            for shard in active:
                self._workers[shard].send("observe", sub_batches[shard])
            for shard in active:
                shard_hits, busy = self._workers[shard].receive()
                self.busy_seconds[shard] += busy
                hits.extend(
                    (positions[shard][local], detection)
                    for local, detection in shard_hits
                )
        hits.sort(key=lambda item: item[0])
        merged = [detection for _, detection in hits]
        self._detections.extend(merged)
        return merged

    def reset(self) -> None:
        """Forget all shard state and past detections."""
        self._detections.clear()
        self.alerts_routed = [0] * self.n_shards
        self.busy_seconds = [0.0] * self.n_shards
        if self.backend == "serial":
            for detector in self.shards:
                detector.reset()
        else:
            for worker in self._workers:
                worker.send("reset")
            for worker in self._workers:
                worker.receive()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity on the shard that owns it."""
        shard = self.shard_of(entity)
        if self.backend == "serial":
            self.shards[shard].reset_entity(entity)
        else:
            self._workers[shard].send("reset_entity", entity)
            self._workers[shard].receive()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Shut down worker processes (idempotent).

        Serial pools are a true no-op: they have no workers and remain
        usable.  A closed *process* pool rejects further batches.
        """
        if self.backend != "process" or self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()
        self._workers = []

    def __enter__(self) -> "ShardedDetectorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "BACKENDS",
    "DetectorTemplate",
    "ShardedDetectorPool",
    "shard_of",
]
