"""Per-entity sharded detection: the pipeline's parallel detection layer.

All detector state is per-entity (PR 1 moved every piece of mutable
inference state into per-entity :class:`repro.core.streaming
.StreamingDecoder` instances), so the alert stream can be partitioned
by entity across independent detector replicas without changing a
single decode: entities never share state, therefore a detector that
only ever sees the sub-stream of "its" entities produces bit-identical
detections for them.

**Shard routing invariant.**  An alert for entity ``e`` is always
routed to shard ``crc32(e) % n_shards``.  The hash is ``zlib.crc32``
(not Python's salted ``hash``) so the assignment is stable across
processes and runs -- a requirement both for the process backend
(parent and workers must agree without coordination) and for
reproducible benchmarks.  Because routing is a pure function of the
entity, every alert of an entity lands on the same shard in stream
order, which is all the exactness argument needs.

Two execution backends share the same routing and merge logic:

* ``serial`` (default) -- ``n_shards`` detector replicas in the calling
  process, processed shard-by-shard.  Deterministic, dependency-free,
  and the reference the process backend is tested against.
* ``process`` -- one persistent worker process per shard.  Workers
  hold their detector replica for the lifetime of the pool (detector
  state must persist across batches), so the per-batch cost is moving
  the sub-batches, not detector state.  Two transports (see
  :data:`TRANSPORTS`): ``pickle`` sends the columnar representation of
  :func:`repro.core.alerts.pack_alert_columns` (parallel tuples of
  primitive fields instead of per-``Alert`` objects) over the worker
  pipe; ``shm`` writes its flat binary encoding
  (:func:`repro.core.alerts.encode_alert_columns`) into a per-shard
  shared-memory ring and sends only an ``(offset, length, seq)``
  descriptor, so the payload crosses zero pipe buffers and the worker
  decodes straight out of the mapped segment.  Either way the batch is
  rebuilt into ``Alert`` instances worker-side.

**Non-blocking fan-out.**  ``observe_batch`` is sugar over the
two-phase :meth:`ShardedDetectorPool.submit_batch` /
:meth:`ShardedDetectorPool.collect` API: ``submit_batch`` ships the
sub-batches to the workers and returns immediately with a ticket, so
the caller can do other work (normalise and filter the *next* batch --
see :meth:`repro.testbed.pipeline.TestbedPipeline.ingest_raw_stream`)
while the workers compute; ``collect`` blocks for the replies, merges,
and returns the detections.  Tickets collect in submission (FIFO)
order.

**Crash propagation.**  A detector exception inside a worker does not
kill the worker loop: the worker catches it and replies
``("error", formatted_traceback)``; the parent drains the remaining
shards' replies for that batch (so the pool is never left with unread
replies) and re-raises a typed :class:`ShardWorkerError` naming the
shard and carrying the worker-side traceback.  The serial backend
wraps detector exceptions the same way, so both backends surface the
same typed error.  Either way the pool stays drivable afterwards --
the failing sub-batch is applied up to the poisoned alert on that
shard -- and ``close()`` shuts down cleanly.

Detections from all shards are merged back into the position order of
the input stream (equal to timestamp order for the time-sorted batches
the scan filter emits), making both backends' output bit-identical to
an unsharded detector consuming the same batch.
"""

from __future__ import annotations

import collections
import copy
import dataclasses
import multiprocessing
import pickle
import time
import traceback
import zlib
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.alerts import (
    Alert,
    AlertColumnsCodecError,
    decode_alert_columns,
    encode_alert_columns,
    pack_alert_columns,
    unpack_alert_columns,
)
from ..core.attack_tagger import Detection
from ..core.detector import Detector
from .shm_ring import DEFAULT_RING_CAPACITY, ShardRing

#: Supported execution backends.
BACKENDS = ("serial", "process")

#: Supported worker-death policies (process backend).
RESTART_POLICIES = ("raise", "restore")

#: Supported sub-batch transports (process backend; serial has no
#: transport).  ``pickle``: columnar sub-batches pickled onto the
#: worker pipes (the original path).  ``shm``: the flat binary encoding
#: of :func:`repro.core.alerts.encode_alert_columns` written into a
#: per-shard shared-memory ring, with only ``(offset, length, seq)``
#: descriptors crossing the pipe; batches the codec cannot express and
#: ring-full conditions fall back to the pipe transparently (counted in
#: ``shm_fallbacks``).
TRANSPORTS = ("pickle", "shm")


class ShardWorkerError(RuntimeError):
    """A detector raised inside a shard.

    Carries the shard index and the formatted traceback of the
    original exception (for the process backend, captured inside the
    worker; the raw traceback object cannot cross the pipe).  The pool
    itself remains drivable: the failing shard applied its sub-batch
    up to the offending alert and its worker loop keeps serving
    commands.
    """

    def __init__(self, shard: int, worker_traceback: str) -> None:
        self.shard = shard
        self.worker_traceback = worker_traceback
        super().__init__(
            f"detector raised in shard {shard}:\n{worker_traceback}"
        )

    def __reduce__(self):
        # RuntimeError's default reduce would re-call __init__ with the
        # formatted *message* as the only argument; reconstruct from
        # the real fields so the error survives pickling (across
        # process boundaries, into repro files).
        return (type(self), (self.shard, self.worker_traceback))


class ShardRecoveryError(ShardWorkerError):
    """A dead shard worker could not be healed within ``max_restarts``.

    Raised only under ``restart_policy="restore"`` once the restart
    budget is exhausted; subclasses :class:`ShardWorkerError` so
    existing handlers keep working.  ``attempts`` is the number of
    respawns that were tried (every one of them is also recorded in the
    pool's :class:`RecoveryLog`).
    """

    def __init__(self, shard: int, worker_traceback: str, attempts: int) -> None:
        # Bypass ShardWorkerError.__init__: worker_traceback must stay
        # the *original* death detail (not a re-wrapped message), so
        # the pickle round-trip via __reduce__ is exact.
        self.shard = shard
        self.worker_traceback = worker_traceback
        self.attempts = attempts
        RuntimeError.__init__(
            self,
            f"shard {shard} unrecovered after {attempts} restart "
            f"attempt(s): {worker_traceback}",
        )

    def __reduce__(self):
        return (type(self), (self.shard, self.worker_traceback, self.attempts))


@dataclasses.dataclass(frozen=True)
class ReshardEvent:
    """One live N→M reshard of the pool (see :meth:`ShardedDetectorPool.reshard`)."""

    old_n_shards: int
    new_n_shards: int
    backend: str
    #: Entities whose per-entity detector state was migrated.
    entities_moved: int
    #: Per-shard telemetry totals at the moment of the reshard (the
    #: per-shard arrays are re-zeroed at the new width; the busy/kernel
    #: totals also accumulate on the pool's ``*_retired`` counters).
    alerts_routed_before: int
    busy_seconds_before: float
    kernel_seconds_before: float
    #: Shards whose worker was dead at harvest time and whose replica
    #: was rebuilt parent-side from the recovery snapshot + replay log.
    rebuilt_shards: Tuple[int, ...]
    reshard_seconds: float


class ReshardLog:
    """Append-only record of every live reshard (an operations log)."""

    def __init__(self) -> None:
        self.events: List[ReshardEvent] = []

    def record(self, event: ReshardEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


@dataclasses.dataclass(frozen=True)
class RecoveryEvent:
    """One supervised restart of a dead shard worker."""

    shard: int
    #: 1-based restart attempt for this shard (monotonic across deaths).
    attempt: int
    backoff_seconds: float
    #: In-flight sub-batches re-submitted FIFO after the respawn.
    resubmitted_batches: int
    #: The death as the parent observed it (exitcode detail).
    death_detail: str
    healed: bool
    recovery_seconds: float


class RecoveryLog:
    """Append-only record of every supervised worker recovery."""

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def record(self, event: RecoveryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def for_shard(self, shard: int) -> List[RecoveryEvent]:
        """Recovery events for one shard, oldest first."""
        return [event for event in self.events if event.shard == shard]

    @property
    def healed(self) -> List[RecoveryEvent]:
        """Restarts that brought the shard back."""
        return [event for event in self.events if event.healed]


def shard_of(entity: str, n_shards: int) -> int:
    """The shard an entity's alerts are routed to (stable across processes)."""
    if n_shards <= 1:
        return 0
    return zlib.crc32(entity.encode("utf-8")) % n_shards


@dataclasses.dataclass(frozen=True)
class _IdentityFactory:
    """``wrap()``'s factory: hands out the wrapped instance itself.

    Only valid for a single serial shard -- every call returns the
    *same* object, which is exactly what the facade path wants (the
    caller's detector instance keeps doing the work) and wrong for any
    real fan-out.
    """

    detector: Detector

    def __call__(self) -> Detector:
        return self.detector


@dataclasses.dataclass(frozen=True)
class DetectorTemplate:
    """Picklable detector factory: deep-copies a pristine template.

    ``AttackTagger.clone()`` is used when available (it shares the
    read-only parameter tables instead of copying them); other
    detectors fall back to :func:`copy.deepcopy`.  Being a plain frozen
    dataclass, the factory pickles cleanly into worker processes.
    """

    template: Detector

    def __call__(self) -> Detector:
        clone = getattr(self.template, "clone", None)
        if callable(clone):
            return clone()
        return copy.deepcopy(self.template)


def _shard_worker_main(factory, connection, ring_name: Optional[str] = None) -> None:
    """Worker loop of one process shard: owns a detector replica.

    Commands arrive as ``(verb, payload)`` tuples; every command is
    answered with exactly one status-tagged reply -- ``("ok", result)``
    or ``("error", formatted_traceback)`` -- so the parent can run a
    simple send-all / receive-all round per batch and a detector
    exception can never wedge the parent or lose its traceback.
    ``observe`` receives a columnar sub-batch
    (:func:`repro.core.alerts.pack_alert_columns`), or its flat binary
    encoding as raw bytes (the shm transport's pipe fallback), and
    replies with ``(hits, busy_seconds, kernel_seconds)`` where
    ``hits`` are ``(position, detection)`` pairs indexed into the
    sub-batch, ``busy_seconds`` is the CPU time the unpack+observe
    loop consumed (used by the sharding benchmark's critical-path
    metric), and ``kernel_seconds`` is the wall-clock slice of that
    spent inside the detector's vectorised decode kernel (0.0 for
    detectors without one).  ``observe_shm`` is the zero-copy variant:
    its payload is a ``(ring_offset, length, seq)`` descriptor and the
    batch bytes are read straight out of the attached shared-memory
    ring (``seq`` must be strictly increasing -- a stale or reordered
    descriptor is an error, never a silently wrong batch).  A detector
    exposing the optional ``observe_batch_indexed`` extension (see
    :class:`repro.core.detector.Detector`) gets the whole sub-batch in
    one call — the ``engine="batched"`` stacked cross-entity kernel —
    instead of the per-alert loop.  ``snapshot`` replies with the
    pickled detector replica; ``restore`` replaces the replica with an
    unpickled snapshot (clearing any recorded factory failure, so a
    supervisor can restore into a worker whose factory crashed at
    spawn).
    """
    ring: Optional[ShardRing] = None
    ring_failure: Optional[str] = None
    last_seq = -1
    if ring_name is not None:
        try:
            ring = ShardRing.attach(ring_name)
        except Exception:
            ring_failure = traceback.format_exc()
    try:
        failure: Optional[str] = None
        try:
            detector = factory()
        except Exception:  # factory crash: report it per-command, not EOF
            detector, failure = None, traceback.format_exc()
        while True:
            command, payload = connection.recv()
            if command == "close":
                connection.send(("ok", None))
                return
            if command == "restore":
                try:
                    detector = pickle.loads(payload)
                    failure = None
                    connection.send(("ok", None))
                except Exception:
                    connection.send(("error", traceback.format_exc()))
                continue
            if failure is not None:
                connection.send(("error", failure))
                continue
            try:
                if command in ("observe", "observe_shm"):
                    started = time.process_time()
                    if command == "observe_shm":
                        if ring is None:
                            raise RuntimeError(
                                "observe_shm without an attached ring"
                                + (f":\n{ring_failure}" if ring_failure else "")
                            )
                        offset, length, seq = payload
                        if seq <= last_seq:
                            raise RuntimeError(
                                f"shm descriptor seq {seq} not after {last_seq}"
                            )
                        last_seq = seq
                        columns = decode_alert_columns(ring.view(offset, length))
                    elif isinstance(payload, (bytes, bytearray, memoryview)):
                        columns = decode_alert_columns(payload)
                    else:
                        columns = payload
                    kernel_before = getattr(detector, "kernel_seconds", 0.0)
                    indexed = getattr(detector, "observe_batch_indexed", None)
                    if indexed is not None:
                        hits: List[Tuple[int, Detection]] = indexed(
                            unpack_alert_columns(columns)
                        )
                    else:
                        hits = []
                        for position, alert in enumerate(
                            unpack_alert_columns(columns)
                        ):
                            detection = detector.observe(alert)
                            if detection is not None:
                                hits.append((position, detection))
                    kernel = getattr(detector, "kernel_seconds", 0.0) - kernel_before
                    connection.send(
                        ("ok", (hits, time.process_time() - started, kernel))
                    )
                elif command == "reset_entity":
                    detector.reset_entity(payload)
                    connection.send(("ok", None))
                elif command == "reset":
                    detector.reset()
                    connection.send(("ok", None))
                elif command == "snapshot":
                    connection.send(("ok", pickle.dumps(detector)))
                else:  # defensive: unknown verbs must not wedge the parent
                    connection.send(("ok", None))
            except Exception:
                connection.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # parent went away
        pass
    finally:
        if ring is not None:
            ring.close()  # unmap only; the parent owns the unlink


class _ProcessShard:
    """Parent-side handle of one worker process."""

    def __init__(
        self,
        index: int,
        factory: DetectorTemplate,
        ring_name: Optional[str] = None,
    ) -> None:
        self.index = index
        context = multiprocessing.get_context()
        self.connection, child_connection = context.Pipe()
        self.process = context.Process(
            target=_shard_worker_main,
            args=(factory, child_connection, ring_name),
            daemon=True,
        )
        self.process.start()
        child_connection.close()

    def send(self, command: str, payload=None) -> bool:
        """Queue one command; returns whether it was actually delivered.

        If the worker process is gone the pipe write fails -- the
        failure is swallowed (``False`` returned) so the caller's
        send-all loop completes, and the matching :meth:`receive`
        reports the death as an ``("error", ...)`` reply instead.
        """
        try:
            self.connection.send((command, payload))
            return True
        except OSError:
            # Only a *dead* worker may be swallowed -- its recv side
            # reports the death.  A failed send to a live worker would
            # otherwise hang the matching receive forever, so fail
            # fast instead.
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                raise
            return False

    def receive(self, timeout: Optional[float] = None) -> Tuple[str, object]:
        """One status-tagged reply; a dead worker becomes a ``dead`` reply.

        Translating ``EOFError`` (worker process gone without replying,
        e.g. killed or ``os._exit``) into a ``("dead", detail)`` reply
        here means every failure mode surfaces to callers through the
        same status-tagged channel instead of a bare pipe error with
        the root cause lost; callers map it to the typed
        :class:`ShardWorkerError` (or heal the shard, under a
        ``restore`` restart policy).  With ``timeout`` set the wait is
        bounded: a wedged (alive but unresponsive) worker produces a
        ``("timeout", detail)`` reply instead of blocking forever.
        """
        try:
            if timeout is not None and not self.connection.poll(timeout):
                return (
                    "timeout",
                    f"shard worker did not reply within {timeout:.1f}s",
                )
            return self.connection.recv()
        except (EOFError, OSError):
            self.process.join(timeout=1.0)
            return (
                "dead",
                f"shard worker process died without replying "
                f"(exitcode {self.process.exitcode})",
            )

    def reap(self) -> None:
        """Dispose of a dead (or dying) worker without a close handshake."""
        try:
            self.process.join(timeout=1.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout=1.0)
        finally:
            try:
                self.connection.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def close(self, timeout: float = 5.0) -> str:
        """Shut the worker down; returns the escalation outcome.

        ``"clean"``: the close handshake (or a worker already dead)
        needed no force.  ``"terminated"``: the worker ignored the
        handshake for ``timeout`` seconds and needed SIGTERM.
        ``"killed"``: it survived SIGTERM too and was SIGKILLed.  The
        bounded handshake is what makes pool shutdown deadlock-free: a
        wedged worker (stuck inside a detector) can stall ``close()``
        by at most a few multiples of ``timeout``, never forever.
        """
        outcome = "clean"
        try:
            if self.process.is_alive():
                delivered = self.send("close")
                if delivered and self.connection.poll(timeout):
                    self.connection.recv()
            self.process.join(timeout=timeout)
        except (BrokenPipeError, EOFError, OSError):
            pass
        if self.process.is_alive():
            outcome = "terminated"
            self.process.terminate()
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - hard to force
                outcome = "killed"
                self.process.kill()
                self.process.join(timeout=timeout)
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - defensive
            pass
        return outcome


class _PendingBatch:
    """Ticket for one submitted batch awaiting :meth:`~ShardedDetectorPool.collect`.

    For the process backend the ticket remembers which shards were sent
    a sub-batch (``active``) and each routed alert's position in the
    original batch; the hits arrive at collect time.  The serial
    backend computes eagerly at submit time, so the ticket already
    holds the hits (or the wrapped error) and collect just finishes the
    merge.
    """

    __slots__ = ("positions", "active", "hits", "error")

    def __init__(
        self,
        positions: List[List[int]],
        active: List[int],
    ) -> None:
        self.positions = positions
        self.active = active
        self.hits: List[Tuple[int, Detection]] = []
        self.error: Optional[ShardWorkerError] = None


@dataclasses.dataclass(frozen=True)
class PoolCloseResult:
    """What :meth:`ShardedDetectorPool.close` had to do to shut down.

    ``escalations`` holds one outcome per worker (``"clean"`` /
    ``"terminated"`` / ``"killed"``, see :meth:`_ProcessShard.close`);
    serial pools -- a true no-op close -- report an empty tuple.
    ``drained_batches`` counts submitted-but-uncollected batches whose
    replies were discarded by the shutdown.
    """

    backend: str
    escalations: Tuple[str, ...] = ()
    drained_batches: int = 0
    already_closed: bool = False

    @property
    def clean(self) -> bool:
        """Whether no worker needed force to shut down."""
        return all(outcome == "clean" for outcome in self.escalations)


class ShardedDetectorPool:
    """Entity-sharded detection layer satisfying the ``Detector`` protocol.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable producing one pristine detector replica
        per shard.  Must be picklable for the process backend
        (:class:`DetectorTemplate` wraps an existing instance).
    n_shards:
        Number of independent shards (>= 1).
    backend:
        ``"serial"`` or ``"process"`` (see module docstring).
    restart_policy:
        What worker death does to the pool (process backend only).
        ``"raise"`` (default): the death surfaces as a typed
        :class:`ShardWorkerError` at collect time -- the pre-existing
        contract.  ``"restore"``: the pool *supervises* its workers --
        on death it respawns the worker with bounded exponential
        backoff, restores the last per-shard detector snapshot, and
        re-submits the lost in-flight sub-batches in FIFO order, so
        the caller sees the same detections an uninterrupted run
        produces; every restart is recorded in :attr:`recovery_log`.
        Deterministically fatal inputs (a sub-batch that kills the
        worker on every replay) burn through ``max_restarts`` and then
        raise :class:`ShardRecoveryError`.
    max_restarts:
        Per-shard restart budget under ``restart_policy="restore"``.
    backoff_base:
        First restart waits ``backoff_base`` seconds, each further
        attempt doubles it (exponential backoff).
    snapshot_every:
        Refresh a shard's recovery snapshot after this many observed
        sub-batches since the last snapshot (``1`` = after every
        collected batch; larger values trade snapshot cost for a
        longer FIFO replay after a death).
    transport:
        How sub-batches reach the workers (process backend only;
        ignored by ``serial``).  ``"pickle"`` (default): columnar
        tuples pickled onto the pipe.  ``"shm"``: the flat binary
        encoding written into a per-shard shared-memory ring with only
        ``(offset, length, seq)`` descriptors on the pipe; batches the
        codec cannot express, or that do not fit the ring, transparently
        fall back to the pipe (``shm_fallbacks`` counts them).  Rings
        are transient plumbing: excluded from snapshots/checkpoints,
        torn down and rebuilt across :meth:`reshard`/:meth:`reopen`,
        and unlinked by :meth:`close`.
    max_inflight:
        Declared pipelining depth: how many submitted-but-uncollected
        batches the driving layer should keep in flight per shard
        (>= 1).  The pool does not enforce a cap -- callers may submit
        freely -- but overlapped drivers size their submission window
        from it, and ring capacity planning assumes it.
    ring_capacity:
        Per-shard ring size in bytes for ``transport="shm"``.

    The pool accumulates the merged detection stream itself, so
    ``pool.detections`` is equivalent to the unsharded detector's
    ``detections`` regardless of backend.
    """

    def __init__(
        self,
        detector_factory,
        *,
        n_shards: int = 1,
        backend: str = "serial",
        restart_policy: str = "raise",
        max_restarts: int = 3,
        backoff_base: float = 0.05,
        snapshot_every: int = 1,
        transport: str = "pickle",
        max_inflight: int = 1,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if restart_policy not in RESTART_POLICIES:
            raise ValueError(f"restart_policy must be one of {RESTART_POLICIES}")
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        self.n_shards = int(n_shards)
        self.backend = backend
        self.restart_policy = restart_policy
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.snapshot_every = int(snapshot_every)
        self.transport = transport
        self.max_inflight = int(max_inflight)
        self.ring_capacity = int(ring_capacity)
        #: Every supervised worker recovery ever performed (survives
        #: reset/reopen: it is an operations log, not pool state).
        self.recovery_log = RecoveryLog()
        #: Every live N→M reshard ever performed (same ops-log status).
        self.reshard_log = ReshardLog()
        self.detector_factory = detector_factory
        self._detections: List[Detection] = []
        # entity -> shard memo; `shard_of()` stays the documented source
        # of truth (the cache is populated from it and never diverges:
        # routing is a pure function of the entity and the fixed shard
        # count), it just spares hot entities a crc32 per alert.
        self._shard_cache: Dict[str, int] = {}
        #: Alerts routed to each shard (routing balance introspection).
        self.alerts_routed: List[int] = [0] * self.n_shards
        #: Cumulative seconds each shard spent observing (serial: wall
        #: time in the caller; process: worker CPU time).
        self.busy_seconds: List[float] = [0.0] * self.n_shards
        #: The slice of ``busy_seconds`` each shard's detector spent
        #: inside its vectorised decode kernel (always 0.0 for
        #: detectors without a ``kernel_seconds`` counter).
        self.kernel_seconds: List[float] = [0.0] * self.n_shards
        #: Busy/kernel/routed totals accumulated by shard layouts that
        #: :meth:`reshard` retired -- the per-shard arrays above are
        #: re-zeroed at the new width, these keep cumulative telemetry
        #: monotone across reshards.
        self.busy_seconds_retired = 0.0
        self.kernel_seconds_retired = 0.0
        self.alerts_routed_retired = 0
        self.shards: List[Detector] = []
        self._workers: List[_ProcessShard] = []
        self._pending: Deque[_PendingBatch] = collections.deque()
        #: Most batches ever simultaneously in flight (submitted,
        #: uncollected) -- checkpointed as service telemetry.
        self.inflight_high_water = 0
        #: Sub-batches shipped zero-copy through the shared-memory
        #: rings / via the pipe fallback (codec miss or ring full).
        #: Runtime telemetry, not checkpointed (rings are transient).
        self.shm_batches = 0
        self.shm_fallbacks = 0
        #: Per-shard rings (shm transport), parent-owned; ``_transit``
        #: mirrors every outstanding observe message per shard in FIFO
        #: order -- the ring region it occupies, or ``None`` for a
        #: pipe-sent payload -- and ``_ring_seq`` stamps descriptors.
        self._rings: List[ShardRing] = []
        self._transit: List[Deque[Optional[Tuple[int, int]]]] = []
        self._ring_seq = 0
        self._closed = False
        self._reset_supervision()
        if backend == "serial":
            self.shards = [detector_factory() for _ in range(self.n_shards)]
        else:
            try:
                self._build_rings()
                self._workers = [
                    self._spawn_worker(shard) for shard in range(self.n_shards)
                ]
            except Exception:
                for worker in self._workers:
                    worker.close()
                self._workers = []
                self._teardown_rings()
                raise

    @classmethod
    def wrap(cls, detector: Detector) -> "ShardedDetectorPool":
        """Single serial shard around an *existing* detector instance.

        This is the facade path: the pipeline's default configuration
        (``n_shards=1``) keeps driving the very detector object the
        caller constructed (no clone, no copy), so external references
        observe its state.
        """
        return cls(_IdentityFactory(detector), n_shards=1, backend="serial")

    @classmethod
    def from_template(
        cls,
        detector: Detector,
        *,
        n_shards: int = 1,
        backend: str = "serial",
        restart_policy: str = "raise",
        max_restarts: int = 3,
        backoff_base: float = 0.05,
        snapshot_every: int = 1,
        transport: str = "pickle",
        max_inflight: int = 1,
        ring_capacity: int = DEFAULT_RING_CAPACITY,
    ) -> "ShardedDetectorPool":
        """Pool whose shards are clones of a pristine template detector."""
        return cls(
            DetectorTemplate(detector),
            n_shards=n_shards,
            backend=backend,
            restart_policy=restart_policy,
            max_restarts=max_restarts,
            backoff_base=backoff_base,
            snapshot_every=snapshot_every,
            transport=transport,
            max_inflight=max_inflight,
            ring_capacity=ring_capacity,
        )

    @property
    def _supervised(self) -> bool:
        """Whether worker deaths are healed instead of raised."""
        return self.backend == "process" and self.restart_policy == "restore"

    def _reset_supervision(self) -> None:
        """Pristine supervision bookkeeping (fresh pool / reset / reopen).

        ``_shard_snapshots[s]`` is the pickled detector state to
        restore a respawned worker from (``None`` = pristine factory
        state); ``_replay_log[s]`` holds the packed sub-batch payloads
        observed since that snapshot (acked and unacked), in FIFO
        order; ``_unacked[s]`` counts replies the worker still owes.
        """
        self._shard_snapshots: List[Optional[bytes]] = [None] * self.n_shards
        self._replay_log: List[Deque] = [
            collections.deque() for _ in range(self.n_shards)
        ]
        self._unacked: List[int] = [0] * self.n_shards
        self._restarts_used: List[int] = [0] * self.n_shards

    # -- shared-memory transport plumbing ----------------------------------
    @property
    def _shm(self) -> bool:
        """Whether sub-batches travel through shared-memory rings."""
        return self.backend == "process" and self.transport == "shm"

    def _build_rings(self, n_shards: Optional[int] = None) -> None:
        """Create one parent-owned ring per shard (shm transport only).

        ``n_shards`` overrides the pool's current width during a live
        reshard, where the rings for the *new* layout are built before
        ``self.n_shards`` is updated.
        """
        if not self._shm:
            return
        count = self.n_shards if n_shards is None else n_shards
        try:
            self._rings = [
                ShardRing.create(self.ring_capacity) for _ in range(count)
            ]
        except Exception:
            self._teardown_rings()
            raise
        self._transit = [collections.deque() for _ in range(count)]

    def _teardown_rings(self) -> None:
        """Unmap and unlink every ring segment (idempotent)."""
        rings, self._rings = self._rings, []
        for ring in rings:
            ring.close()
        self._transit = []

    def _spawn_worker(self, shard: int) -> _ProcessShard:
        """One worker process, attached to its shard's ring if any."""
        if self._rings:
            return _ProcessShard(
                shard, self.detector_factory, ring_name=self._rings[shard].name
            )
        return _ProcessShard(shard, self.detector_factory)

    def _finish_transit(self, shard: int, status: str) -> None:
        """Retire the oldest in-transit observe payload after its reply.

        Consuming a reply with status ``ok``/``error``/``dead`` means
        the worker has read (or will never read) the oldest outstanding
        message, so its ring region -- if it used one -- is released
        for reuse.  A ``timeout`` reply releases nothing: the worker is
        alive and may still read the region later.
        """
        if not self._transit or status == "timeout":
            return
        queue = self._transit[shard]
        if not queue:
            return
        region = queue.popleft()
        if region is not None:
            self._rings[shard].release(*region)

    def _send_observe(self, shard: int, sub_batch: List[Alert]):
        """Ship one sub-batch to a worker; returns ``(payload, delivered)``.

        ``payload`` is what a supervised heal must re-drive (the flat
        binary encoding when the codec succeeded, else the packed
        columns) and ``delivered`` whether the message reached a live
        worker.  With ``transport="shm"`` the encoded bytes are written
        into the shard's ring and only an ``(offset, length, seq)``
        descriptor crosses the pipe; a batch outside the codec's type
        set falls back to the legacy pickled-columns path and a full
        (or too-small) ring falls back to sending the already-encoded
        bytes over the pipe -- both transparent to the caller and
        counted in ``shm_fallbacks``.
        """
        packed = pack_alert_columns(sub_batch)
        if not self._shm:
            return packed, self._workers[shard].send("observe", packed)
        try:
            encoded = encode_alert_columns(packed)
        except AlertColumnsCodecError:
            self.shm_fallbacks += 1
            delivered = self._workers[shard].send("observe", packed)
            self._transit[shard].append(None)
            return packed, delivered
        offset = self._rings[shard].write(encoded)
        if offset is None:
            self.shm_fallbacks += 1
            delivered = self._workers[shard].send("observe", encoded)
            self._transit[shard].append(None)
            return encoded, delivered
        self._ring_seq += 1
        delivered = self._workers[shard].send(
            "observe_shm", (offset, len(encoded), self._ring_seq)
        )
        self._transit[shard].append((offset, len(encoded)))
        self.shm_batches += 1
        return encoded, delivered

    #: Entity->shard memo entries kept (LRU): bounds parent-process
    #: memory on the unbounded-cardinality entity streams a long-lived
    #: service sees.  Routing stays correct either way -- an evicted
    #: entity just pays one crc32 again.  Per-instance override:
    #: assign ``pool.shard_cache_limit``.
    _SHARD_CACHE_LIMIT = 1 << 17

    # -- routing -----------------------------------------------------------
    @property
    def shard_cache_limit(self) -> int:
        """Max entity->shard memo entries before LRU eviction."""
        return getattr(self, "_shard_cache_limit", self._SHARD_CACHE_LIMIT)

    @shard_cache_limit.setter
    def shard_cache_limit(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("shard_cache_limit must be >= 1")
        self._shard_cache_limit = int(limit)
        while len(self._shard_cache) > self._shard_cache_limit:
            self._shard_cache.pop(next(iter(self._shard_cache)))

    def shard_of(self, entity: str) -> int:
        """The shard the entity's alerts are routed to (memoised, LRU).

        The memo exploits dict insertion order as recency order: a hit
        re-inserts the entry at the back, so eviction of the front
        entry (``next(iter(...))``) is least-recently-used.  That keeps
        the hot working set resident even when total entity cardinality
        far exceeds the cap -- the clear-everything alternative would
        periodically forget the hot entities too.
        """
        cache = self._shard_cache
        shard = cache.pop(entity, None)
        if shard is None:
            if len(cache) >= self.shard_cache_limit:
                cache.pop(next(iter(cache)))
            shard = shard_of(entity, self.n_shards)
        cache[entity] = shard
        return shard

    def _partition(
        self, alerts: Sequence[Alert]
    ) -> Tuple[List[List[Alert]], List[List[int]]]:
        """Split one batch into per-shard sub-batches, remembering positions."""
        sub_batches: List[List[Alert]] = [[] for _ in range(self.n_shards)]
        positions: List[List[int]] = [[] for _ in range(self.n_shards)]
        memo = self.shard_of
        for position, alert in enumerate(alerts):
            shard = memo(alert.entity)
            sub_batches[shard].append(alert)
            positions[shard].append(position)
        return sub_batches, positions

    # -- Detector protocol -------------------------------------------------
    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far, merged into stream order."""
        return list(self._detections)

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Route one alert to its shard; return a detection if one fires."""
        found = self.observe_batch([alert])
        return found[0] if found else None

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Fan one batch out across the shards and merge the detections.

        Sugar for :meth:`collect` over :meth:`submit_batch`: the batch
        is shipped to the workers and the caller blocks for the merged
        result.  Detections come back tagged with their triggering
        alert's position in the batch and are merged in that order --
        exactly the emission order of an unsharded detector scanning
        the batch front to back (and timestamp order for time-sorted
        batches).

        Refuses to run while submitted batches are pending collection:
        interleaving the blocking wrapper with the two-phase API would
        otherwise ship the batch to the workers and *then* fail in
        ``collect`` (out-of-order ticket), double-applying the batch if
        the caller retries.
        """
        self._require_idle("observe_batch")
        return self.collect(self.submit_batch(alerts))

    # -- non-blocking fan-out ----------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` shut this (process) pool down."""
        return self._closed

    @property
    def pending_batches(self) -> int:
        """Submitted batches not yet collected."""
        return len(self._pending)

    def submit_batch(self, alerts: Iterable[Alert]) -> _PendingBatch:
        """Ship one batch to the shards without waiting for the results.

        Returns a ticket for :meth:`collect`.  With the process backend
        the sub-batches are shipped to the workers (see ``transport``)
        and the call returns immediately, so the caller can overlap
        other work with the workers' compute.  The serial backend has
        nobody to overlap with and computes eagerly here; a detector
        exception is captured in the ticket and raised at collect time,
        mirroring the process backend's semantics.  Tickets must be
        collected in submission order.

        .. note:: With the ``pickle`` transport, "non-blocking" is
           bounded by OS pipe capacity (typically ~64 KiB): a send
           larger than the worker can buffer blocks until the worker
           drains it, so keeping *many* large batches in flight can
           stall the submit.  The ``shm`` transport puts the payload in
           a shared-memory ring and only a tiny descriptor on the pipe,
           so pipelining ``max_inflight`` batches deep is always safe
           (a full ring degrades to the pipe path, it never blocks on
           worker progress).
        """
        if self._closed:
            raise RuntimeError("ShardedDetectorPool is closed")
        batch = list(alerts)
        sub_batches, positions = self._partition(batch)
        active = [shard for shard, sub_batch in enumerate(sub_batches) if sub_batch]
        ticket = _PendingBatch(positions, active)
        if self.backend == "process":
            # Send everything first so all workers compute concurrently.
            # `alerts_routed` counts a shard only once its sub-batch is
            # actually on the pipe, so the telemetry stays truthful if
            # the send loop fails part-way.
            sent: List[int] = []
            try:
                for shard in active:
                    payload, delivered = self._send_observe(
                        shard, sub_batches[shard]
                    )
                    sent.append(shard)
                    if self._supervised:
                        # Remember the payload whether or not the send
                        # reached a live worker: a swallowed send to a
                        # dead worker is exactly what the heal replays.
                        self._replay_log[shard].append(payload)
                        self._unacked[shard] += 1
                    if delivered:
                        self.alerts_routed[shard] += len(sub_batches[shard])
            except Exception:
                # A failure part-way through the send loop (e.g. an
                # unpicklable alert attribute) must not leave the
                # already-sent shards with unread replies for the next
                # collect() to mistake for its own batch: drain them
                # here (keeping the busy telemetry the workers report),
                # then surface the original error.
                for shard in sent:
                    status, reply = self._workers[shard].receive()
                    self._finish_transit(shard, status)
                    if self._supervised and self._unacked[shard] > 0:
                        self._unacked[shard] -= 1
                    if status == "ok":
                        self.busy_seconds[shard] += reply[1]
                        self.kernel_seconds[shard] += reply[2]
                raise
        else:
            for shard in active:
                self.alerts_routed[shard] += len(sub_batches[shard])
                started = time.perf_counter()
                detector = self.shards[shard]
                kernel_before = getattr(detector, "kernel_seconds", 0.0)
                try:
                    indexed = getattr(detector, "observe_batch_indexed", None)
                    if indexed is not None:
                        shard_positions = positions[shard]
                        ticket.hits.extend(
                            (shard_positions[local], detection)
                            for local, detection in indexed(sub_batches[shard])
                        )
                    else:
                        for local, alert in enumerate(sub_batches[shard]):
                            detection = detector.observe(alert)
                            if detection is not None:
                                ticket.hits.append(
                                    (positions[shard][local], detection)
                                )
                except Exception as exc:
                    if ticket.error is None:
                        ticket.error = ShardWorkerError(
                            shard, traceback.format_exc()
                        )
                        ticket.error.__cause__ = exc
                finally:
                    self.busy_seconds[shard] += time.perf_counter() - started
                    self.kernel_seconds[shard] += (
                        getattr(detector, "kernel_seconds", 0.0) - kernel_before
                    )
        self._pending.append(ticket)
        if len(self._pending) > self.inflight_high_water:
            self.inflight_high_water = len(self._pending)
        return ticket

    def collect(self, ticket: Optional[_PendingBatch] = None) -> list[Detection]:
        """Wait for one submitted batch and merge its detections.

        Collects the oldest uncollected ticket (replies come back in
        FIFO order per worker pipe, so collection must follow
        submission order; passing a newer ticket raises
        ``ValueError``).  If any shard reports an error, the remaining
        shards' replies for this batch are still drained -- the pool is
        never left with unread replies -- and a
        :class:`ShardWorkerError` for the first failing shard is
        raised; the batch's partial detections are discarded.
        """
        if self._closed:
            raise RuntimeError("ShardedDetectorPool is closed")
        if not self._pending:
            raise RuntimeError("no submitted batch to collect")
        if ticket is not None and ticket is not self._pending[0]:
            raise ValueError("batches must be collected in submission order")
        ticket = self._pending.popleft()
        if self.backend == "process":
            for shard in ticket.active:
                status, payload = self._receive_reply(shard)
                if status != "ok":
                    if ticket.error is None:
                        if status == "unrecovered":
                            ticket.error = ShardRecoveryError(
                                shard, str(payload), self._restarts_used[shard]
                            )
                        else:
                            ticket.error = ShardWorkerError(shard, str(payload))
                    continue
                shard_hits, busy, kernel = payload
                self.busy_seconds[shard] += busy
                self.kernel_seconds[shard] += kernel
                ticket.hits.extend(
                    (ticket.positions[shard][local], detection)
                    for local, detection in shard_hits
                )
            if self._supervised and ticket.error is None:
                for shard in ticket.active:
                    self._maybe_refresh_snapshot(shard)
        if ticket.error is not None:
            raise ticket.error
        ticket.hits.sort(key=lambda item: item[0])
        merged = [detection for _, detection in ticket.hits]
        self._detections.extend(merged)
        return merged

    # -- supervised recovery ----------------------------------------------
    def _receive_reply(self, shard: int) -> Tuple[str, object]:
        """One observe reply for a shard, healing dead workers if supervised.

        Returns the worker's status-tagged reply; under
        ``restart_policy="restore"`` a ``dead`` reply triggers the
        respawn/restore/replay loop and the returned reply is the
        healed worker's answer for the same sub-batch.  ``unrecovered``
        means the restart budget is exhausted.  Acknowledgement
        bookkeeping for the supervision replay log happens here, so
        every exit path stays consistent.
        """
        status, payload = self._workers[shard].receive()
        self._finish_transit(shard, status)
        if status == "dead" and self._supervised:
            status, payload = self._heal_shard(shard, str(payload))
        if self._supervised:
            if status in ("ok", "error"):
                # The worker replied: the oldest in-flight payload is
                # acknowledged (it stays in the replay log until the
                # next snapshot refresh).
                if self._unacked[shard] > 0:
                    self._unacked[shard] -= 1
            else:
                # Unrecovered death: nobody owes replies any more, and
                # replaying this log can never succeed -- drop it so a
                # caller that keeps driving the pool is not charged
                # for it again.
                self._replay_log[shard].clear()
                self._unacked[shard] = 0
        return status, payload

    def _heal_shard(self, shard: int, death_detail: str) -> Tuple[str, object]:
        """Respawn a dead worker and replay its lost in-flight sub-batches.

        Bounded by ``max_restarts`` with exponential backoff.  On
        success returns the healed worker's reply for the oldest
        *unacknowledged* sub-batch (the one the caller is collecting);
        already-acknowledged replayed batches only contribute busy
        telemetry (their detections were merged before the death --
        the worker genuinely redoes the work, so the busy seconds are
        truthfully accumulated twice).  Returns ``("unrecovered",
        detail)`` once the budget is exhausted.
        """
        while self._restarts_used[shard] < self.max_restarts:
            attempt = self._restarts_used[shard] + 1
            self._restarts_used[shard] = attempt
            backoff = self.backoff_base * (2.0 ** (attempt - 1))
            if backoff > 0:
                time.sleep(backoff)
            started = time.perf_counter()
            self._workers[shard].reap()
            healed = False
            reply: Optional[Tuple[str, object]] = None
            try:
                worker: Optional[_ProcessShard] = self._spawn_worker(shard)
            except Exception:  # pragma: no cover - spawn failure
                worker = None
            if worker is not None:
                self._workers[shard] = worker
                reply, healed = self._replay_into(worker, shard)
            self.recovery_log.record(
                RecoveryEvent(
                    shard=shard,
                    attempt=attempt,
                    backoff_seconds=backoff,
                    resubmitted_batches=len(self._replay_log[shard]),
                    death_detail=death_detail,
                    healed=healed,
                    recovery_seconds=time.perf_counter() - started,
                )
            )
            if healed:
                assert reply is not None
                return reply
        return ("unrecovered", death_detail)

    def _replay_into(
        self, worker: _ProcessShard, shard: int
    ) -> Tuple[Optional[Tuple[str, object]], bool]:
        """Restore a respawned worker and re-drive the shard's replay log.

        Restores the last snapshot (pristine factory state if none was
        taken yet), re-submits every logged payload in FIFO order, and
        consumes replies up to and including the oldest unacknowledged
        one -- replies for *newer* unacknowledged payloads are left on
        the pipe for the collects that own them.  With the shm
        transport the shard's ring is reset wholesale first (the dead
        worker consumed nothing that matters any more) and the logged
        encodings are re-written into it FIFO with fresh descriptor
        sequence numbers, so the healed worker replays the exact bytes
        the dead one was sent.  Returns ``(reply, True)`` on success,
        ``(None, False)`` if the fresh worker died too (the caller
        retries within the restart budget).
        """
        if self._rings:
            self._rings[shard].reset()
            self._transit[shard].clear()
        if self._shard_snapshots[shard] is not None:
            if not worker.send("restore", self._shard_snapshots[shard]):
                return None, False
            status, _ = worker.receive()
            if status != "ok":
                return None, False
        log = self._replay_log[shard]
        for payload in log:
            if not self._resend_payload(worker, shard, payload):
                return None, False
        acked_replays = len(log) - self._unacked[shard]
        reply: Optional[Tuple[str, object]] = None
        for position in range(acked_replays + 1):
            status, payload = worker.receive()
            if status in ("dead", "timeout"):
                return None, False
            self._finish_transit(shard, status)
            if position < acked_replays:
                if status == "ok":
                    self.busy_seconds[shard] += payload[1]
                    self.kernel_seconds[shard] += payload[2]
            else:
                reply = (status, payload)
        return reply, True

    def _resend_payload(self, worker: _ProcessShard, shard: int, payload) -> bool:
        """Re-drive one replay-log payload into a healed worker.

        Encoded-bytes payloads go back through the ring when they fit
        (fresh seq, same FIFO order) and over the pipe otherwise;
        packed-columns payloads (codec fallbacks) always take the pipe,
        exactly as the original submission did.
        """
        if isinstance(payload, (bytes, bytearray)) and self._rings:
            offset = self._rings[shard].write(payload)
            if offset is not None:
                self._ring_seq += 1
                delivered = worker.send(
                    "observe_shm", (offset, len(payload), self._ring_seq)
                )
                self._transit[shard].append((offset, len(payload)))
                return delivered
        delivered = worker.send("observe", payload)
        if self._transit:
            self._transit[shard].append(None)
        return delivered

    def _maybe_refresh_snapshot(self, shard: int) -> None:
        """Refresh a shard's recovery snapshot once it is safe and due.

        Safe: the worker owes no replies (a snapshot taken with
        observes still queued would not include them, yet the replay
        log holding them would be cleared).  Due: ``snapshot_every``
        sub-batches accumulated since the last snapshot.
        """
        if self._unacked[shard] != 0:
            return
        if len(self._replay_log[shard]) < self.snapshot_every:
            return
        self._refresh_snapshot_now(shard)

    def _refresh_snapshot_now(self, shard: int) -> None:
        """Snapshot one shard's detector and clear its replay log.

        Best-effort: on any failure (worker just died, snapshot
        unpicklable) the previous snapshot and replay log are kept --
        they still reconstruct the same state, just more slowly.
        """
        worker = self._workers[shard]
        if not worker.send("snapshot"):
            return
        status, payload = worker.receive()
        if status == "ok":
            self._shard_snapshots[shard] = payload
            self._replay_log[shard].clear()

    def _drain_pending(self, timeout: Optional[float] = None) -> int:
        """Read every outstanding reply, discarding results and errors.

        Returns the number of batches drained.  With ``timeout`` set,
        each reply wait is bounded -- a wedged worker costs at most
        ``timeout`` seconds per expected reply instead of hanging the
        shutdown forever (the caller escalates to terminate/kill right
        after).
        """
        drained = len(self._pending)
        while self._pending:
            ticket = self._pending.popleft()
            if self.backend == "process":
                for shard in ticket.active:
                    status, _ = self._workers[shard].receive(timeout=timeout)
                    self._finish_transit(shard, status)
        return drained

    def _require_idle(self, operation: str) -> None:
        if self._closed:
            raise RuntimeError("ShardedDetectorPool is closed")
        if self._pending:
            raise RuntimeError(
                f"cannot {operation} with {len(self._pending)} submitted "
                "batch(es) pending; collect() them first"
            )

    def _clear_pool_state(self) -> None:
        """Zero the pool-level records: detections and telemetry.

        The single definition of "pristine pool state" shared by
        :meth:`reset` and :meth:`reopen` (fresh construction produces
        the same values), so the two lifecycle paths cannot drift.
        """
        self._detections.clear()
        self.alerts_routed = [0] * self.n_shards
        self.busy_seconds = [0.0] * self.n_shards
        self.kernel_seconds = [0.0] * self.n_shards
        self.busy_seconds_retired = 0.0
        self.kernel_seconds_retired = 0.0
        self.alerts_routed_retired = 0

    def reset(self) -> None:
        """Forget all shard state and past detections."""
        self._require_idle("reset")
        self._clear_pool_state()
        error: Optional[ShardWorkerError] = None
        if self.backend == "serial":
            # Drive every shard even if one fails, mirroring the
            # process backend (which always receives all replies), and
            # wrap the first failure in the same typed error.
            for shard, detector in enumerate(self.shards):
                try:
                    detector.reset()
                except Exception as exc:
                    if error is None:
                        error = ShardWorkerError(shard, traceback.format_exc())
                        error.__cause__ = exc
        else:
            for worker in self._workers:
                worker.send("reset")
            for worker in self._workers:
                status, payload = worker.receive()
                if status != "ok" and error is None:
                    error = ShardWorkerError(worker.index, str(payload))
        if error is not None:
            raise error
        if self._supervised:
            # Every shard is back to factory-pristine state: discard the
            # snapshots (None means "pristine factory" to the healer) so
            # a later heal cannot resurrect pre-reset entity state.
            self._reset_supervision()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity on the shard that owns it."""
        self._require_idle("reset_entity")
        shard = self.shard_of(entity)
        if self.backend == "serial":
            try:
                self.shards[shard].reset_entity(entity)
            except Exception as exc:
                error = ShardWorkerError(shard, traceback.format_exc())
                error.__cause__ = exc
                raise error
        else:
            self._workers[shard].send("reset_entity", entity)
            status, payload = self._workers[shard].receive()
            if status != "ok":
                raise ShardWorkerError(shard, str(payload))
            if self._supervised:
                # The old snapshot still contains the entity; refresh it
                # so a later heal cannot resurrect the forgotten state.
                self._refresh_snapshot_now(shard)

    # -- live resharding ---------------------------------------------------
    def _migration_factory(self) -> DetectorTemplate:
        """A per-shard replica factory usable at the *new* shard count.

        ``wrap()``'s :class:`_IdentityFactory` hands out the same
        object on every call -- correct for the single-shard facade,
        wrong for any fan-out -- so resharding converts it into a
        :class:`DetectorTemplate` over the wrapped detector (whose
        ``clone()`` produces pristine replicas).  The conversion is
        recorded on the pool, so heals and reopens after the reshard
        use the template too.
        """
        factory = self.detector_factory
        if isinstance(factory, _IdentityFactory):
            clone = getattr(factory.detector, "clone", None)
            if not callable(clone):
                raise TypeError(
                    "cannot reshard a wrap()-facade pool: the wrapped "
                    f"detector {type(factory.detector).__name__} has no "
                    "clone() to build additional replicas from"
                )
            factory = DetectorTemplate(factory.detector)
            self.detector_factory = factory
        return factory

    def _rebuild_replica(self, shard: int) -> Detector:
        """Reconstruct a dead shard's replica parent-side.

        The supervised bookkeeping already holds everything needed:
        the last recovery snapshot (pristine factory state if none was
        taken yet) plus the FIFO replay log of packed sub-batches
        observed since it.  Unlike :meth:`_heal_shard` no worker is
        respawned -- the caller (reshard) is about to tear the worker
        layout down anyway, so the replica is rebuilt in the parent.
        """
        snapshot = self._shard_snapshots[shard]
        if snapshot is not None:
            detector = pickle.loads(snapshot)
        else:
            detector = self.detector_factory()
        for payload in self._replay_log[shard]:
            if isinstance(payload, (bytes, bytearray)):
                payload = decode_alert_columns(payload)
            batch = unpack_alert_columns(payload)
            observe_batch = getattr(detector, "observe_batch", None)
            if observe_batch is not None:
                observe_batch(batch)
            else:
                for alert in batch:
                    detector.observe(alert)
        return detector

    def _harvest_replicas(self) -> Tuple[List[Detector], List[int]]:
        """Current per-shard replicas as parent-side detector objects.

        Serial shards are already in the parent.  Process shards answer
        the ``snapshot`` verb; a shard whose worker died (e.g.
        SIGKILLed mid-stream) is -- under ``restart_policy="restore"``
        and within the restart budget -- rebuilt parent-side from its
        recovery snapshot + replay log instead of failing the whole
        reshard.  Returns ``(replicas, rebuilt_shard_indices)``.
        """
        if self.backend == "serial":
            return list(self.shards), []
        replicas: List[Detector] = []
        rebuilt: List[int] = []
        for shard, worker in enumerate(self._workers):
            blob: Optional[bytes] = None
            detail = "shard worker pipe closed before reshard snapshot"
            if worker.send("snapshot"):
                status, payload = worker.receive()
                if status == "ok":
                    blob = payload
                elif status == "error":
                    # The worker is alive but its replica would not
                    # pickle -- rebuilding from the supervision log
                    # cannot help, surface it.
                    raise ShardWorkerError(shard, str(payload))
                else:  # dead / timeout
                    detail = str(payload)
            if blob is not None:
                replicas.append(pickle.loads(blob))
                continue
            if not self._supervised:
                raise ShardWorkerError(shard, detail)
            if self._restarts_used[shard] >= self.max_restarts:
                raise ShardRecoveryError(
                    shard, detail, self._restarts_used[shard]
                )
            started = time.perf_counter()
            self._restarts_used[shard] += 1
            replicas.append(self._rebuild_replica(shard))
            rebuilt.append(shard)
            self.recovery_log.record(
                RecoveryEvent(
                    shard=shard,
                    attempt=self._restarts_used[shard],
                    backoff_seconds=0.0,
                    resubmitted_batches=len(self._replay_log[shard]),
                    death_detail=detail,
                    healed=True,
                    recovery_seconds=time.perf_counter() - started,
                )
            )
        return replicas, rebuilt

    def reshard(self, n_shards: int) -> ReshardEvent:
        """Live N→M reshard: migrate per-entity detector state in place.

        Because all detector state is per-entity and routing is a pure
        function of the entity (``crc32(entity) % n_shards``), moving
        every entity's state wholesale to the shard that owns it under
        the new count -- and nothing else -- reproduces exactly the
        state a pool *constructed* with ``n_shards=M`` would have
        reached on the same stream.  Detections were already merged
        back into stream order at collect time, so subsequent output is
        bit-identical across the transition.

        Mechanics: every current replica is harvested into the parent
        (serial: the live objects; process: the ``snapshot`` verb, with
        a supervised parent-side rebuild for SIGKILLed workers), the
        per-entity tracks are exported via the detectors' optional
        migration extension (``export_entity_tracks`` /
        ``adopt_entity_track`` / ``replace_detections`` -- see
        :class:`repro.core.detector.Detector`) and re-routed into M
        fresh replicas, and -- for the process backend -- the old
        workers are shut down and M new ones spawned and restored from
        the migrated replicas.  Requires an idle pool: callers must
        collect in-flight tickets first (the pipeline's ``reshard``
        control defers to a submission boundary for exactly this
        reason).

        Telemetry arrays (``alerts_routed``/``busy_seconds``/
        ``kernel_seconds``) are re-zeroed at the new width; their
        totals accumulate on the ``*_retired`` counters and in the
        returned :class:`ReshardEvent` (also appended to
        :attr:`reshard_log`).

        Supervision bookkeeping is rebuilt for the new width, but the
        per-shard restart budget is **not** refreshed: shards that
        keep their index carry their consumed ``max_restarts``
        attempts across the transition (only shards new at a wider
        count start from zero), so periodic resharding cannot mask a
        crash-looping worker from the recovery-budget contract.
        """
        self._require_idle("reshard")
        new_n = int(n_shards)
        if new_n < 1:
            raise ValueError("n_shards must be >= 1")
        started = time.perf_counter()
        old_n = self.n_shards
        factory = self._migration_factory()
        replicas, rebuilt = self._harvest_replicas()
        fresh: List[Detector] = [factory() for _ in range(new_n)]
        moved = 0
        for replica in replicas:
            export = getattr(replica, "export_entity_tracks", None)
            if export is None:
                raise TypeError(
                    f"detector {type(replica).__name__} does not support "
                    "live resharding: it lacks the export_entity_tracks/"
                    "adopt_entity_track migration extension"
                )
            for entity, track in export().items():
                target = fresh[shard_of(entity, new_n)]
                adopt = getattr(target, "adopt_entity_track", None)
                if adopt is None:
                    raise TypeError(
                        f"detector {type(target).__name__} does not support "
                        "live resharding: it lacks adopt_entity_track"
                    )
                adopt(entity, track)
                moved += 1
        # Rebuild each replica's own detection log from the pool-level
        # merged log (complete and stream-ordered), filtered by the new
        # routing, so `replica.detections` introspection stays
        # consistent with a pool constructed at the new count.
        for index, replica in enumerate(fresh):
            replace = getattr(replica, "replace_detections", None)
            if replace is not None:
                replace(
                    [
                        detection
                        for detection in self._detections
                        if shard_of(detection.entity, new_n) == index
                    ]
                )
        blobs: List[bytes] = []
        if self.backend == "process":
            blobs = [
                pickle.dumps(replica, pickle.HIGHEST_PROTOCOL)
                for replica in fresh
            ]
            # Mark closed before touching workers (mirrors reopen()):
            # if a respawn below fails the pool must reject batches as
            # closed, not pose as open with a half-built worker set.
            self._closed = True
            for worker in self._workers:
                worker.close()
            self._workers = []
            # Rings are per-shard-slot plumbing: tear the old layout's
            # segments down (unlink) and build fresh ones at the new
            # width before the workers that attach to them spawn.
            self._teardown_rings()
            spawned: List[_ProcessShard] = []
            try:
                self._build_rings(new_n)
                for shard in range(new_n):
                    spawned.append(self._spawn_worker(shard))
                delivered = [
                    worker.send("restore", blob)
                    for worker, blob in zip(spawned, blobs)
                ]
                error: Optional[ShardWorkerError] = None
                for worker, sent in zip(spawned, delivered):
                    if not sent:
                        if error is None:
                            error = ShardWorkerError(
                                worker.index,
                                "shard worker pipe closed before reshard restore",
                            )
                        continue
                    status, payload = worker.receive()
                    if status != "ok" and error is None:
                        error = ShardWorkerError(worker.index, str(payload))
                if error is not None:
                    raise error
            except Exception:
                for worker in spawned:
                    worker.close()
                self._teardown_rings()
                raise
            self._workers = spawned
            self._closed = False
        else:
            self.shards = fresh
        routed_before = sum(self.alerts_routed)
        busy_before = sum(self.busy_seconds)
        kernel_before = sum(self.kernel_seconds)
        self.alerts_routed_retired += routed_before
        self.busy_seconds_retired += busy_before
        self.kernel_seconds_retired += kernel_before
        self.n_shards = new_n
        # The memo maps entities to *old* shard indices: flush it.
        self._shard_cache.clear()
        self.alerts_routed = [0] * new_n
        self.busy_seconds = [0.0] * new_n
        self.kernel_seconds = [0.0] * new_n
        restarts_used = self._restarts_used
        self._reset_supervision()
        # Fresh workers, but not a fresh fault history: shards that
        # keep their index carry their consumed restart budget across
        # the transition (shards new at a wider count start at zero).
        # Otherwise a periodic reshard would refresh a crash-looping
        # worker's budget forever and ShardRecoveryError -- the budget
        # contract -- could never surface on a long-lived service.
        self._restarts_used = [
            restarts_used[shard] if shard < old_n else 0
            for shard in range(new_n)
        ]
        if self._supervised:
            # The migrated replicas are exact recovery snapshots.
            self._shard_snapshots = list(blobs)
        event = ReshardEvent(
            old_n_shards=old_n,
            new_n_shards=new_n,
            backend=self.backend,
            entities_moved=moved,
            alerts_routed_before=routed_before,
            busy_seconds_before=busy_before,
            kernel_seconds_before=kernel_before,
            rebuilt_shards=tuple(rebuilt),
            reshard_seconds=time.perf_counter() - started,
        )
        self.reshard_log.record(event)
        return event

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Capture the pool's full state for a pipeline checkpoint.

        Returns a picklable mapping: one pickled detector blob per
        shard (serial shards are pickled in place; process shards
        answer the ``snapshot`` verb) plus the pool-level records
        (recorded detections, routing memo, busy telemetry).  Requires
        an idle pool -- a snapshot with submitted batches in flight
        would be neither before nor after them.
        """
        self._require_idle("snapshot_state")
        blobs: List[bytes] = []
        if self.backend == "serial":
            for shard, detector in enumerate(self.shards):
                try:
                    blobs.append(pickle.dumps(detector, pickle.HIGHEST_PROTOCOL))
                except Exception as exc:
                    error = ShardWorkerError(shard, traceback.format_exc())
                    error.__cause__ = exc
                    raise error
        else:
            delivered = [worker.send("snapshot") for worker in self._workers]
            error = None
            for worker, sent in zip(self._workers, delivered):
                if not sent:
                    if error is None:
                        error = ShardWorkerError(
                            worker.index, "shard worker pipe closed before snapshot"
                        )
                    continue
                status, payload = worker.receive()
                if status != "ok":
                    if error is None:
                        error = ShardWorkerError(worker.index, str(payload))
                    continue
                blobs.append(payload)
            if error is not None:
                raise error
        return {
            "n_shards": self.n_shards,
            "backend": self.backend,
            "shards": blobs,
            "detections": list(self._detections),
            "alerts_routed": list(self.alerts_routed),
            "busy_seconds": list(self.busy_seconds),
            "kernel_seconds": list(self.kernel_seconds),
            "busy_seconds_retired": self.busy_seconds_retired,
            "kernel_seconds_retired": self.kernel_seconds_retired,
            "alerts_routed_retired": self.alerts_routed_retired,
            "inflight_high_water": self.inflight_high_water,
        }

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Load a :meth:`snapshot_state` mapping back into this pool.

        The pool must be idle and configured identically (same shard
        count and backend) to the snapshotted one.  Serial shards are
        restored *in place* (``__dict__`` swap) so facade pools built
        with :meth:`wrap` keep handing out the caller's original
        detector object; process shards receive the ``restore`` verb.
        Under supervision the restored blobs become the recovery
        snapshots.
        """
        self._require_idle("restore_state")
        if state["n_shards"] != self.n_shards or state["backend"] != self.backend:
            raise ValueError(
                "checkpoint was taken with n_shards="
                f"{state['n_shards']} backend={state['backend']!r}; this pool "
                f"has n_shards={self.n_shards} backend={self.backend!r}"
            )
        blobs = list(state["shards"])
        if self.backend == "serial":
            for shard, blob in enumerate(blobs):
                restored = pickle.loads(blob)
                current = self.shards[shard]
                if type(restored) is type(current):
                    current.__dict__.clear()
                    current.__dict__.update(restored.__dict__)
                else:  # pragma: no cover - heterogeneous replica swap
                    self.shards[shard] = restored
        else:
            delivered = [
                worker.send("restore", blob)
                for worker, blob in zip(self._workers, blobs)
            ]
            error = None
            for worker, sent in zip(self._workers, delivered):
                if not sent:
                    if error is None:
                        error = ShardWorkerError(
                            worker.index, "shard worker pipe closed before restore"
                        )
                    continue
                status, payload = worker.receive()
                if status != "ok" and error is None:
                    error = ShardWorkerError(worker.index, str(payload))
            if error is not None:
                raise error
        self._detections[:] = list(state["detections"])
        self.alerts_routed = list(state["alerts_routed"])
        self.busy_seconds = list(state["busy_seconds"])
        # Absent in checkpoints taken before the batched decode kernel.
        self.kernel_seconds = list(
            state.get("kernel_seconds", [0.0] * self.n_shards)
        )
        # Absent in checkpoints taken before live resharding landed.
        self.busy_seconds_retired = float(state.get("busy_seconds_retired", 0.0))
        self.kernel_seconds_retired = float(
            state.get("kernel_seconds_retired", 0.0)
        )
        self.alerts_routed_retired = int(state.get("alerts_routed_retired", 0))
        self.inflight_high_water = int(state["inflight_high_water"])
        if self._supervised:
            self._reset_supervision()
            self._shard_snapshots = [bytes(blob) for blob in blobs]

    # -- lifecycle ---------------------------------------------------------
    def reopen(self) -> None:
        """Restart the detection tier: pristine state, fresh workers.

        Backend-uniform semantics: after ``reopen()`` the pool behaves
        like a freshly constructed one -- no per-entity detector state,
        no recorded detections, zeroed routing/busy telemetry, and (for
        the process backend) brand-new worker processes spawned from
        the factory.  Uncollected submitted batches are drained first
        (their results discarded), mirroring :meth:`close`.

        Reopening a *closed* process pool is allowed -- this is the
        ``close()``/reopen lifecycle the campaign fuzzer exercises --
        and reopening an open pool recycles its workers.  The serial
        backend resets its replicas in place (for a :meth:`wrap` facade
        pool that resets the caller's own detector instance, which is
        exactly what "the detection tier restarted" means there).
        """
        self._drain_pending(timeout=5.0)
        if self.backend == "process":
            # Mark closed before touching the workers: if a respawn
            # below fails, the pool must reject batches as closed, not
            # pose as open with dead worker handles.
            if not self._closed:
                self._closed = True
                for worker in self._workers:
                    worker.close()
            self._workers = []
            self._teardown_rings()
            fresh: List[_ProcessShard] = []
            try:
                self._build_rings()
                for shard in range(self.n_shards):
                    fresh.append(self._spawn_worker(shard))
            except Exception:
                for worker in fresh:
                    worker.close()
                self._teardown_rings()
                raise
            self._workers = fresh
            self._closed = False
            self._clear_pool_state()
            self._reset_supervision()
        else:
            self.reset()

    def close(self, *, timeout: float = 5.0) -> PoolCloseResult:
        """Shut down worker processes (idempotent).

        Serial pools are a true no-op: they have no workers and remain
        usable.  A closed *process* pool rejects further batches.  Any
        still-uncollected submitted batches are drained (their results
        discarded) so the shutdown handshake never races a pending
        reply.

        Every wait -- pending-reply drain, shutdown handshake, process
        join -- is bounded by ``timeout`` seconds, and a worker that
        does not exit cooperatively is escalated ``terminate`` then
        ``kill``, so a hung or wedged worker can never deadlock
        shutdown.  The returned :class:`PoolCloseResult` records the
        per-shard escalation outcomes.
        """
        if self.backend != "process":
            return PoolCloseResult(backend=self.backend, escalations=())
        if self._closed:
            return PoolCloseResult(
                backend=self.backend, escalations=(), already_closed=True
            )
        drained = self._drain_pending(timeout=timeout)
        self._closed = True
        escalations = tuple(worker.close(timeout=timeout) for worker in self._workers)
        self._workers = []
        # Workers are gone (clean, terminated, or killed): the owner
        # unlinks every ring segment so nothing survives in /dev/shm.
        self._teardown_rings()
        return PoolCloseResult(
            backend=self.backend,
            escalations=escalations,
            drained_batches=drained,
        )

    def __enter__(self) -> "ShardedDetectorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


__all__ = [
    "BACKENDS",
    "DetectorTemplate",
    "PoolCloseResult",
    "RecoveryEvent",
    "RecoveryLog",
    "ReshardEvent",
    "ReshardLog",
    "RESTART_POLICIES",
    "ShardedDetectorPool",
    "ShardRecoveryError",
    "ShardWorkerError",
    "shard_of",
    "TRANSPORTS",
]
