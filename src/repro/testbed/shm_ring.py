"""Per-shard shared-memory ring buffers for zero-copy sub-batch transport.

One :class:`ShardRing` backs one shard.  The parent (pool supervisor)
*creates* and owns the segment; the worker process *attaches* to it by
name.  Traffic is strictly single-producer/single-consumer: the parent
writes an encoded batch (:func:`repro.core.alerts.encode_alert_columns`)
into the ring and sends only a ``(ring_offset, length, seq)`` descriptor
down the control pipe; the worker decodes straight out of the mapped
segment — no pickle bytes ever cross the pipe for the batch payload.

Allocation is a rolling head plus an explicit in-flight region list
(bounded by the pool's pipelining depth, so membership checks are O(1)
in practice).  A write that does not fit contiguously at the head wraps
to offset 0; if neither placement avoids the in-flight regions the
write returns ``None`` and the caller falls back to the pickle path.
Regions are released FIFO as worker replies are consumed, mirroring the
per-shard FIFO the descriptor protocol guarantees.

Rings are transient runtime plumbing: they are excluded from snapshots
and checkpoints, torn down and rebuilt across reshard, and unlinked by
the owner on ``close()``.  Segment names carry :data:`SEGMENT_PREFIX`
so leak hunters (tests/conftest.py) can scan ``/dev/shm`` for strays.
"""

from __future__ import annotations

import secrets
from collections import deque
from multiprocessing import shared_memory
from typing import Deque, Optional, Tuple

#: Prefix of every ring segment name; leak checks scan /dev/shm for it.
SEGMENT_PREFIX = "repro-ring-"

#: Default per-shard ring capacity in bytes.  Sized so typical fuzz and
#: pipeline sub-batches (a few KiB encoded) fit tens of times over even
#: at pipelining depth 4, while keeping /dev/shm usage per pool modest.
DEFAULT_RING_CAPACITY = 1 << 20


class ShardRing:
    """SPSC shared-memory ring with owner-side allocation bookkeeping.

    Exactly one of the two constructors is used per process:
    :meth:`create` in the parent (owner — allocates, writes, releases,
    unlinks) and :meth:`attach` in the worker (reader — ``view`` only).
    """

    def __init__(self, segment: shared_memory.SharedMemory, *, owner: bool) -> None:
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._owner = owner
        self.capacity = segment.size
        self._head = 0
        self._inflight: Deque[Tuple[int, int]] = deque()

    # -- constructors ---------------------------------------------------

    @classmethod
    def create(cls, capacity: int = DEFAULT_RING_CAPACITY) -> "ShardRing":
        """Create and own a fresh segment (parent side)."""
        name = SEGMENT_PREFIX + secrets.token_hex(8)
        segment = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShardRing":
        """Attach to an existing segment by name (worker side).

        ``SharedMemory(name)`` re-registers the segment with the
        resource tracker the worker inherited from the parent; that is
        a set-semantics no-op (the parent's ``create`` registered the
        same name), and the parent's ``unlink`` on close retires the
        single entry -- so the worker must *not* unregister here, or
        the owner's balanced unregister would have nothing to remove.
        """
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    @property
    def name(self) -> str:
        if self._segment is None:
            raise ValueError("ring is closed")
        return self._segment.name

    @property
    def inflight_regions(self) -> int:
        return len(self._inflight)

    # -- owner-side allocation ------------------------------------------

    def write(self, payload: bytes) -> Optional[int]:
        """Copy ``payload`` into the ring; return its offset or ``None``.

        ``None`` means the payload cannot be placed without overlapping
        an in-flight region (ring full, or payload larger than the ring)
        and the caller must fall back to the pipe-pickle path.
        """
        if self._segment is None:
            raise ValueError("ring is closed")
        if not self._owner:
            raise ValueError("only the owning side may write")
        length = len(payload)
        if length == 0 or length > self.capacity:
            return None
        candidates = [self._head] if self._head + length <= self.capacity else []
        if self._head != 0:
            candidates.append(0)  # wrap to the start of the segment
        for offset in candidates:
            if self._overlaps_inflight(offset, length):
                continue
            self._segment.buf[offset : offset + length] = payload
            self._inflight.append((offset, length))
            self._head = offset + length
            return offset
        return None

    def release(self, offset: int, length: int) -> None:
        """Retire the oldest in-flight region (must match FIFO order)."""
        if not self._inflight:
            raise ValueError("release with no in-flight region")
        expected = self._inflight[0]
        if expected != (offset, length):
            raise ValueError(
                f"out-of-order ring release: expected {expected}, "
                f"got {(offset, length)}"
            )
        self._inflight.popleft()
        if not self._inflight:
            self._head = 0

    def reset(self) -> None:
        """Drop all in-flight bookkeeping (heal path: reader is dead)."""
        self._inflight.clear()
        self._head = 0

    def _overlaps_inflight(self, offset: int, length: int) -> bool:
        end = offset + length
        for used_offset, used_length in self._inflight:
            if offset < used_offset + used_length and used_offset < end:
                return True
        return False

    # -- reader side ----------------------------------------------------

    def view(self, offset: int, length: int) -> bytes:
        """Materialise one descriptor's payload (worker side)."""
        if self._segment is None:
            raise ValueError("ring is closed")
        if offset < 0 or length < 0 or offset + length > self.capacity:
            raise ValueError(f"descriptor {(offset, length)} outside ring")
        return bytes(self._segment.buf[offset : offset + length])

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Unmap (both sides) and unlink (owner only).  Idempotent."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        try:
            segment.close()
        except Exception:
            pass
        if self._owner:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._inflight.clear()
        self._head = 0

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass


__all__ = ["ShardRing", "SEGMENT_PREFIX", "DEFAULT_RING_CAPACITY"]
