"""The staged pipeline architecture: batch-in/batch-out stages.

Fig. 4's workflow is a chain of transformations over batches::

    raw records --normalize--> alerts --filter--> survivors
                 --detect--> detections --respond--> actions

:class:`PipelineStage` states that contract once: a stage has a
``name`` (the key its cumulative runtime is recorded under in
``PipelineStats.stage_seconds``) and a ``process`` method taking one
batch and returning the next stage's batch.  The protocol is
structural, so the telemetry adapters
(:class:`repro.telemetry.normalizer.NormalizerStage`,
:class:`repro.telemetry.filtering.ScanFilterStage`) satisfy it without
importing the testbed package.

This module adds the two testbed-owned stages:

* :class:`DetectionStage` -- drives every attached detector pool
  (:class:`repro.testbed.sharding.ShardedDetectorPool`) over the
  filtered batch and returns the primary detector's new detections.
* :class:`ResponseStage` -- feeds detections to the
  :class:`repro.testbed.responder.ResponseOrchestrator` and returns the
  actions taken.

:class:`~repro.testbed.pipeline.TestbedPipeline` assembles the four
stages and times each one; its pre-stage constructor/API is kept as a
thin facade on top.
"""

from __future__ import annotations

import collections
from typing import Deque, Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from ..core.alerts import Alert
from ..core.attack_tagger import Detection
from .responder import ResponseOrchestrator, ResponseRecord
from .sharding import ShardedDetectorPool


@runtime_checkable
class PipelineStage(Protocol):
    """One batch-in/batch-out stage of the testbed pipeline."""

    name: str

    def process(self, batch: Sequence) -> list:
        """Transform one batch into the next stage's batch."""
        ...


class DetectionStage:
    """Detection layer: every detector pool scans the filtered batch.

    Detections from *all* pools are recorded (tagged with the pool's
    name) into ``sink`` -- the pipeline's cross-detector detection log
    -- while only the primary pool's detections flow on to the response
    stage, mirroring the paper's deployment where comparison models run
    side by side but only the deployed model pages operators.
    """

    name = "detect"

    def __init__(
        self,
        pools: Dict[str, ShardedDetectorPool],
        primary: str,
        sink: List[Tuple[str, Detection]],
    ) -> None:
        if primary not in pools:
            raise ValueError(f"primary detector {primary!r} not among {list(pools)}")
        self.pools = pools
        self.primary = primary
        self.sink = sink
        self._inflight: Deque[Dict[str, object]] = collections.deque()
        #: Most batches ever simultaneously submitted-but-uncollected --
        #: checkpointed as service telemetry (overlap depth reached).
        self.inflight_high_water = 0

    @property
    def pending_batches(self) -> int:
        """Submitted batches not yet collected."""
        return len(self._inflight)

    def submit(self, batch: Sequence[Alert]) -> None:
        """Ship one filtered batch to every pool without waiting.

        The process-backed pools' workers start computing immediately;
        the caller can overlap other work (normalising and filtering
        the next batch) before calling :meth:`collect`.  If a pool
        rejects the submission (e.g. it was closed), the partially
        submitted batch is still queued (pools that never received it
        are simply absent from the ticket) so a later :meth:`collect`
        drains the already-shipped sub-batches in FIFO order -- no
        pool is ever left with unread replies.
        """
        # Deterministic rejections must fire before *any* pool receives
        # the batch: a failure after the first send irreversibly
        # advances that pool's detector state, so a caller retry would
        # double-apply the batch there.
        for name, pool in self.pools.items():
            if pool.closed:
                raise RuntimeError(
                    f"detector pool {name!r}: ShardedDetectorPool is closed"
                )
        batch = list(batch)
        tickets: Dict[str, object] = {}
        try:
            for name, pool in self.pools.items():
                tickets[name] = pool.submit_batch(batch)
        except Exception:
            if tickets:
                self._inflight.append(tickets)
                if len(self._inflight) > self.inflight_high_water:
                    self.inflight_high_water = len(self._inflight)
            raise
        self._inflight.append(tickets)
        if len(self._inflight) > self.inflight_high_water:
            self.inflight_high_water = len(self._inflight)

    def collect(self) -> list[Detection]:
        """Wait for the oldest submitted batch; return primary detections.

        Every pool's ticket is collected even if one of them raises (so
        no pool is left with unread replies); the first error is
        re-raised afterwards.  Pools without a ticket (their submit
        failed) are skipped.
        """
        if not self._inflight:
            raise RuntimeError("no submitted batch to collect")
        tickets = self._inflight.popleft()
        primary_detections: list[Detection] = []
        error: Exception | None = None
        for name, pool in self.pools.items():
            ticket = tickets.get(name)
            if ticket is None:
                continue
            try:
                found = pool.collect(ticket)
            except Exception as exc:
                if error is None:
                    error = exc
                continue
            self.sink.extend((name, detection) for detection in found)
            if name == self.primary:
                primary_detections = found
        if error is not None:
            raise error
        return primary_detections

    def process(self, batch: Sequence[Alert]) -> list[Detection]:
        """Scan one filtered batch; return the primary pool's detections.

        Refuses to run while a submitted batch is pending collection:
        ``collect`` pops the *oldest* ticket, so interleaving the
        blocking wrapper with submit/collect would silently return the
        in-flight batch's detections as this batch's.
        """
        if self._inflight:
            raise RuntimeError(
                "cannot process() with submitted batch(es) pending; "
                "collect() them first"
            )
        self.submit(batch)
        return self.collect()


class ResponseStage:
    """Response layer: notifications, BHR blocks, quarantine, recycling."""

    name = "respond"

    def __init__(self, responder: ResponseOrchestrator) -> None:
        self.responder = responder

    def process(self, batch: Sequence[Detection]) -> list[ResponseRecord]:
        """Respond to one detection batch; return every action taken."""
        actions: list[ResponseRecord] = []
        for detection in batch:
            actions.extend(self.responder.handle_detection(detection))
        return actions


__all__ = ["PipelineStage", "DetectionStage", "ResponseStage"]
