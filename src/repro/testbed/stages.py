"""The staged pipeline architecture: batch-in/batch-out stages.

Fig. 4's workflow is a chain of transformations over batches::

    raw records --normalize--> alerts --filter--> survivors
                 --detect--> detections --respond--> actions

:class:`PipelineStage` states that contract once: a stage has a
``name`` (the key its cumulative runtime is recorded under in
``PipelineStats.stage_seconds``) and a ``process`` method taking one
batch and returning the next stage's batch.  The protocol is
structural, so the telemetry adapters
(:class:`repro.telemetry.normalizer.NormalizerStage`,
:class:`repro.telemetry.filtering.ScanFilterStage`) satisfy it without
importing the testbed package.

This module adds the two testbed-owned stages:

* :class:`DetectionStage` -- drives every attached detector pool
  (:class:`repro.testbed.sharding.ShardedDetectorPool`) over the
  filtered batch and returns the primary detector's new detections.
* :class:`ResponseStage` -- feeds detections to the
  :class:`repro.testbed.responder.ResponseOrchestrator` and returns the
  actions taken.

:class:`~repro.testbed.pipeline.TestbedPipeline` assembles the four
stages and times each one; its pre-stage constructor/API is kept as a
thin facade on top.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from ..core.alerts import Alert
from ..core.attack_tagger import Detection
from .responder import ResponseOrchestrator, ResponseRecord
from .sharding import ShardedDetectorPool


@runtime_checkable
class PipelineStage(Protocol):
    """One batch-in/batch-out stage of the testbed pipeline."""

    name: str

    def process(self, batch: Sequence) -> list:
        """Transform one batch into the next stage's batch."""
        ...


class DetectionStage:
    """Detection layer: every detector pool scans the filtered batch.

    Detections from *all* pools are recorded (tagged with the pool's
    name) into ``sink`` -- the pipeline's cross-detector detection log
    -- while only the primary pool's detections flow on to the response
    stage, mirroring the paper's deployment where comparison models run
    side by side but only the deployed model pages operators.
    """

    name = "detect"

    def __init__(
        self,
        pools: Dict[str, ShardedDetectorPool],
        primary: str,
        sink: List[Tuple[str, Detection]],
    ) -> None:
        if primary not in pools:
            raise ValueError(f"primary detector {primary!r} not among {list(pools)}")
        self.pools = pools
        self.primary = primary
        self.sink = sink

    def process(self, batch: Sequence[Alert]) -> list[Detection]:
        """Scan one filtered batch; return the primary pool's detections."""
        primary_detections: list[Detection] = []
        for name, pool in self.pools.items():
            found = pool.observe_batch(batch)
            self.sink.extend((name, detection) for detection in found)
            if name == self.primary:
                primary_detections = found
        return primary_detections


class ResponseStage:
    """Response layer: notifications, BHR blocks, quarantine, recycling."""

    name = "respond"

    def __init__(self, responder: ResponseOrchestrator) -> None:
        self.responder = responder

    def process(self, batch: Sequence[Detection]) -> list[ResponseRecord]:
        """Respond to one detection batch; return every action taken."""
        actions: list[ResponseRecord] = []
        for detection in batch:
            actions.extend(self.responder.handle_detection(detection))
        return actions


__all__ = ["PipelineStage", "DetectionStage", "ResponseStage"]
