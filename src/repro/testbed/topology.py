"""Cluster topology: hosts, virtual machines, containers, segments.

The testbed is embedded in a large scientific-computing network (more
than 13,000 computing nodes at NCSA).  The reproduction models just
enough of that structure for the experiments: named network segments,
hosts with addresses and roles, the SSH trust edges between hosts
(authorized keys / known_hosts) that the ransomware's lateral movement
exploits, and lightweight VM/container records for the honeypot.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Iterator, Optional

import numpy as np

from .addresses import AddressAllocator, AddressBlock, PRODUCTION_NETWORK, TESTBED_NETWORK


class HostRole(enum.Enum):
    """Functional role of a host in the cluster."""

    LOGIN = "login"
    COMPUTE = "compute"
    STORAGE = "storage"
    SERVICE = "service"
    DATABASE = "database"
    HONEYPOT_ENTRY = "honeypot_entry"
    MONITOR = "monitor"


@dataclasses.dataclass
class Host:
    """One physical or virtual host."""

    name: str
    address: str
    role: HostRole
    segment: str
    compromised: bool = False
    ssh_keys: set[str] = dataclasses.field(default_factory=set)
    known_hosts: set[str] = dataclasses.field(default_factory=set)

    def trust(self, other: "Host", *, key: Optional[str] = None) -> None:
        """Record that this host can reach ``other`` over SSH.

        ``key`` names the private key stored on this host that is
        authorised on ``other`` -- the exact artefact the ransomware's
        lateral-movement loop harvests.
        """
        self.known_hosts.add(other.name)
        if key is not None:
            self.ssh_keys.add(key)

    def mark_compromised(self) -> None:
        """Flag the host as attacker-controlled."""
        self.compromised = True


@dataclasses.dataclass(frozen=True)
class NetworkSegment:
    """A named network segment backed by an address block."""

    name: str
    block: AddressBlock
    description: str = ""


class ClusterTopology:
    """The simulated cluster: segments, hosts, and SSH trust edges."""

    def __init__(self) -> None:
        self._segments: dict[str, NetworkSegment] = {}
        self._allocators: dict[str, AddressAllocator] = {}
        self._hosts: dict[str, Host] = {}

    # -- segments ------------------------------------------------------------
    def add_segment(self, segment: NetworkSegment) -> NetworkSegment:
        """Register a network segment."""
        if segment.name in self._segments:
            raise ValueError(f"duplicate segment: {segment.name}")
        self._segments[segment.name] = segment
        self._allocators[segment.name] = AddressAllocator(segment.block)
        return segment

    def segment(self, name: str) -> NetworkSegment:
        """Segment by name."""
        return self._segments[name]

    def segments(self) -> list[NetworkSegment]:
        """All registered segments."""
        return list(self._segments.values())

    # -- hosts ------------------------------------------------------------------
    def add_host(self, name: str, role: HostRole, segment: str) -> Host:
        """Create a host in ``segment`` with an automatically allocated address."""
        if name in self._hosts:
            raise ValueError(f"duplicate host: {name}")
        if segment not in self._segments:
            raise KeyError(f"unknown segment: {segment}")
        address = self._allocators[segment].allocate(name)
        host = Host(name=name, address=address, role=role, segment=segment)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        """Host by name."""
        return self._hosts[name]

    def host_by_address(self, address: str) -> Optional[Host]:
        """Host with the given address, if any."""
        for host in self._hosts.values():
            if host.address == address:
                return host
        return None

    def hosts(self, *, role: Optional[HostRole] = None, segment: Optional[str] = None) -> list[Host]:
        """Hosts filtered by role and/or segment."""
        out = list(self._hosts.values())
        if role is not None:
            out = [h for h in out if h.role is role]
        if segment is not None:
            out = [h for h in out if h.segment == segment]
        return out

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    # -- trust graph ---------------------------------------------------------------
    def add_trust(self, source: str, target: str, *, key: Optional[str] = None) -> None:
        """Record an SSH trust edge from ``source`` to ``target``."""
        self.host(source).trust(self.host(target), key=key)

    def reachable_via_ssh(self, start: str) -> set[str]:
        """Transitive closure of SSH trust edges from ``start``.

        This is the blast radius of a single compromised host under the
        ransomware's key-stealing lateral movement.
        """
        seen: set[str] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            host = self._hosts.get(current)
            if host is None:
                continue
            stack.extend(host.known_hosts - seen)
        seen.discard(start)
        return seen

    def compromised_hosts(self) -> list[Host]:
        """Hosts currently flagged as compromised."""
        return [h for h in self._hosts.values() if h.compromised]


def build_default_topology(
    *,
    num_login: int = 4,
    num_compute: int = 64,
    num_storage: int = 8,
    num_database: int = 4,
    trust_density: float = 0.08,
    seed: int = 11,
) -> ClusterTopology:
    """A scaled-down but structurally faithful NCSA-style cluster.

    The real system has >13,000 nodes; the default here keeps the same
    structure (login nodes, compute fleet, storage, databases, a
    dedicated honeypot /24) at a size where whole-testbed experiments
    run in milliseconds.  ``trust_density`` controls how many SSH trust
    edges exist between hosts, which in turn controls how far the
    ransomware can spread laterally.
    """
    rng = np.random.default_rng(seed)
    topology = ClusterTopology()
    topology.add_segment(
        NetworkSegment("production", PRODUCTION_NETWORK, "NCSA production /16")
    )
    topology.add_segment(
        NetworkSegment("honeypot", TESTBED_NETWORK, "dedicated testbed /24 with honeypot entry points")
    )

    for i in range(num_login):
        topology.add_host(f"login{i:02d}", HostRole.LOGIN, "production")
    for i in range(num_compute):
        topology.add_host(f"compute{i:04d}", HostRole.COMPUTE, "production")
    for i in range(num_storage):
        topology.add_host(f"storage{i:02d}", HostRole.STORAGE, "production")
    for i in range(num_database):
        topology.add_host(f"db{i:02d}", HostRole.DATABASE, "production")
    topology.add_host("zeek-manager", HostRole.MONITOR, "production")

    # SSH trust: every login node reaches most compute nodes; users'
    # compute-to-compute trust follows the configured density.
    hosts = topology.hosts(role=HostRole.COMPUTE)
    for login in topology.hosts(role=HostRole.LOGIN):
        for host in hosts:
            if rng.random() < 0.6:
                topology.add_trust(login.name, host.name, key=f"id_rsa_{login.name}")
    names = [h.name for h in hosts]
    for source in names:
        for target in names:
            if source != target and rng.random() < trust_density:
                topology.add_trust(source, target, key=f"id_rsa_{source}")
    # Database hosts are reachable from a few compute nodes (batch jobs).
    for db in topology.hosts(role=HostRole.DATABASE):
        for host in rng.choice(hosts, size=min(6, len(hosts)), replace=False):
            topology.add_trust(host.name, db.name, key=f"id_rsa_{host.name}")
    return topology


__all__ = [
    "HostRole",
    "Host",
    "NetworkSegment",
    "ClusterTopology",
    "build_default_topology",
]
