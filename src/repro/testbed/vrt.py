"""Vulnerability Reproduction Tool (VRT / "timemachine").

Reproducing an old vulnerability (say Heartbleed) requires the Linux
distribution, the vulnerable package version, and every dependency *as
they existed at the time* -- modern distributions ship patched versions
and incompatible dependencies.  NCSA's tool solves this by pointing
``debootstrap`` at the Debian snapshot archive for a chosen date.

The offline reproduction models the tool's decision logic end to end:

* a catalogue of Debian releases with their release dates,
* a snapshot repository that knows, for each (package, date), which
  version was current and what it depends on,
* :class:`VulnerabilityReproductionTool.build_container` -- given a
  date (``YYYYMMDD``) and a target package, select the release that was
  current just before that date, resolve the package's dependency
  closure from the snapshot, and return a container specification,
* a small CVE catalogue so the canonical scenarios (Heartbleed,
  Shellshock, Struts) can be reproduced by name.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Mapping, Optional, Sequence


@dataclasses.dataclass(frozen=True)
class DebianRelease:
    """One Debian release with its release date."""

    codename: str
    version: str
    released: _dt.date


#: Debian release history covering the snapshot archive era (2005-present).
DEBIAN_RELEASES: tuple[DebianRelease, ...] = (
    DebianRelease("sarge", "3.1", _dt.date(2005, 6, 6)),
    DebianRelease("etch", "4.0", _dt.date(2007, 4, 8)),
    DebianRelease("lenny", "5.0", _dt.date(2009, 2, 14)),
    DebianRelease("squeeze", "6.0", _dt.date(2011, 2, 6)),
    DebianRelease("wheezy", "7", _dt.date(2013, 5, 4)),
    DebianRelease("jessie", "8", _dt.date(2015, 4, 25)),
    DebianRelease("stretch", "9", _dt.date(2017, 6, 17)),
    DebianRelease("buster", "10", _dt.date(2019, 7, 6)),
    DebianRelease("bullseye", "11", _dt.date(2021, 8, 14)),
    DebianRelease("bookworm", "12", _dt.date(2023, 6, 10)),
)


@dataclasses.dataclass(frozen=True)
class PackageVersion:
    """A package version valid over a date interval in the snapshot archive."""

    name: str
    version: str
    available_from: _dt.date
    depends: tuple[str, ...] = ()
    vulnerable_to: tuple[str, ...] = ()


class SnapshotRepository:
    """Simulated snapshot.debian.org: per-date package resolution."""

    def __init__(self, packages: Optional[Sequence[PackageVersion]] = None) -> None:
        self._packages: dict[str, list[PackageVersion]] = {}
        for package in packages if packages is not None else default_package_history():
            self._packages.setdefault(package.name, []).append(package)
        for versions in self._packages.values():
            versions.sort(key=lambda p: p.available_from)

    def package_names(self) -> list[str]:
        """All package names known to the archive."""
        return sorted(self._packages)

    def resolve(self, name: str, date: _dt.date) -> PackageVersion:
        """Version of ``name`` current at ``date`` (latest not newer than it)."""
        versions = self._packages.get(name)
        if not versions:
            raise KeyError(f"package not in snapshot archive: {name}")
        candidates = [v for v in versions if v.available_from <= date]
        if not candidates:
            raise LookupError(f"no snapshot of {name} exists on or before {date.isoformat()}")
        return candidates[-1]

    def dependency_closure(self, name: str, date: _dt.date) -> dict[str, PackageVersion]:
        """Resolve ``name`` and all its transitive dependencies at ``date``."""
        resolved: dict[str, PackageVersion] = {}
        stack = [name]
        while stack:
            current = stack.pop()
            if current in resolved:
                continue
            version = self.resolve(current, date)
            resolved[current] = version
            stack.extend(dep for dep in version.depends if dep not in resolved)
        return resolved


def default_package_history() -> list[PackageVersion]:
    """A small but realistic package history for the canonical scenarios."""
    return [
        # openssl: Heartbleed (CVE-2014-0160) affects 1.0.1 through 1.0.1f.
        PackageVersion("openssl", "0.9.8o-4", _dt.date(2010, 6, 1), ("libc6", "zlib1g")),
        PackageVersion("openssl", "1.0.1e-2", _dt.date(2013, 2, 11), ("libc6", "zlib1g"),
                       vulnerable_to=("CVE-2014-0160",)),
        PackageVersion("openssl", "1.0.1f-1", _dt.date(2014, 1, 6), ("libc6", "zlib1g"),
                       vulnerable_to=("CVE-2014-0160",)),
        PackageVersion("openssl", "1.0.1g-1", _dt.date(2014, 4, 7), ("libc6", "zlib1g")),
        # bash: Shellshock (CVE-2014-6271).
        PackageVersion("bash", "4.2+dfsg-0.1", _dt.date(2011, 3, 1), ("libc6",),
                       vulnerable_to=("CVE-2014-6271",)),
        PackageVersion("bash", "4.3-11", _dt.date(2014, 9, 25), ("libc6",)),
        # postgresql: the honeypot's bait service.
        PackageVersion("postgresql", "9.1.24-0", _dt.date(2011, 9, 12), ("libc6", "libssl")),
        PackageVersion("postgresql", "9.6.24-0", _dt.date(2016, 9, 29), ("libc6", "libssl"),
                       vulnerable_to=("DEFAULT-CREDENTIALS",)),
        PackageVersion("postgresql", "13.9-0", _dt.date(2020, 9, 24), ("libc6", "libssl")),
        # struts on tomcat: CVE-2017-5638.
        PackageVersion("libstruts-java", "1.2.9-5", _dt.date(2012, 2, 1), ("default-jre",),
                       vulnerable_to=("CVE-2017-5638",)),
        PackageVersion("libstruts-java", "2.5.10.1-1", _dt.date(2017, 3, 8), ("default-jre",)),
        # Support packages.
        PackageVersion("libc6", "2.11.3-4", _dt.date(2010, 1, 1)),
        PackageVersion("libc6", "2.19-18", _dt.date(2014, 9, 1)),
        PackageVersion("zlib1g", "1.2.7-1", _dt.date(2012, 5, 1), ("libc6",)),
        PackageVersion("libssl", "1.0.1e-2", _dt.date(2013, 2, 11), ("libc6",)),
        PackageVersion("default-jre", "1.7-52", _dt.date(2013, 1, 1), ("libc6",)),
    ]


#: CVE catalogue mapping advisory IDs to (package, announcement date).
CVE_CATALOGUE: Mapping[str, tuple[str, _dt.date]] = {
    "CVE-2014-0160": ("openssl", _dt.date(2014, 4, 7)),      # Heartbleed
    "CVE-2014-6271": ("bash", _dt.date(2014, 9, 24)),         # Shellshock
    "CVE-2017-5638": ("libstruts-java", _dt.date(2017, 3, 7)),  # Struts RCE
    "DEFAULT-CREDENTIALS": ("postgresql", _dt.date(2020, 9, 1)),
}


@dataclasses.dataclass(frozen=True)
class ContainerSpec:
    """The output of the VRT: everything needed to build the old container."""

    snapshot_date: _dt.date
    release: DebianRelease
    snapshot_url: str
    target_package: PackageVersion
    dependencies: tuple[PackageVersion, ...]
    reproduced_cves: tuple[str, ...]

    @property
    def is_vulnerable(self) -> bool:
        """Whether the resolved target package carries a known vulnerability."""
        return bool(self.reproduced_cves)

    def debootstrap_command(self) -> str:
        """The equivalent debootstrap invocation (documentation aid)."""
        return (
            f"debootstrap --variant=minbase {self.release.codename} ./rootfs "
            f"{self.snapshot_url}"
        )


class VulnerabilityReproductionTool:
    """Builds old-container specifications from a date and a target package."""

    SNAPSHOT_URL_TEMPLATE = "https://snapshot.debian.org/archive/debian/{date}T000000Z/"
    EARLIEST_SNAPSHOT = _dt.date(2005, 3, 12)

    def __init__(self, repository: Optional[SnapshotRepository] = None) -> None:
        self.repository = repository or SnapshotRepository()

    # -- date handling -----------------------------------------------------
    @staticmethod
    def parse_date(date: str | _dt.date) -> _dt.date:
        """Accept ``YYYYMMDD`` strings (the tool's CLI format) or date objects."""
        if isinstance(date, _dt.date):
            return date
        if len(date) != 8 or not date.isdigit():
            raise ValueError(f"dates must be YYYYMMDD, got {date!r}")
        return _dt.date(int(date[:4]), int(date[4:6]), int(date[6:8]))

    def select_release(self, date: _dt.date) -> DebianRelease:
        """The Debian release current at ``date`` (released just before it)."""
        candidates = [r for r in DEBIAN_RELEASES if r.released <= date]
        if not candidates:
            raise LookupError(f"no Debian release predates {date.isoformat()}")
        return candidates[-1]

    # -- main entry points ------------------------------------------------------
    def build_container(self, date: str | _dt.date, target_package: str) -> ContainerSpec:
        """Build a container spec for ``target_package`` as of ``date``."""
        snapshot_date = self.parse_date(date)
        if snapshot_date < self.EARLIEST_SNAPSHOT:
            raise LookupError(
                f"the snapshot archive starts {self.EARLIEST_SNAPSHOT.isoformat()}; "
                f"{snapshot_date.isoformat()} predates it"
            )
        release = self.select_release(snapshot_date)
        closure = self.repository.dependency_closure(target_package, snapshot_date)
        target = closure.pop(target_package)
        return ContainerSpec(
            snapshot_date=snapshot_date,
            release=release,
            snapshot_url=self.SNAPSHOT_URL_TEMPLATE.format(date=snapshot_date.strftime("%Y%m%d")),
            target_package=target,
            dependencies=tuple(sorted(closure.values(), key=lambda p: p.name)),
            reproduced_cves=target.vulnerable_to,
        )

    def reproduce_cve(self, cve: str, *, days_before_announcement: int = 7) -> ContainerSpec:
        """Build the container that reproduces a named CVE.

        The snapshot date is chosen shortly *before* the vulnerability's
        announcement so the unpatched version is what the archive
        resolves -- exactly the Heartbleed recipe described in §IV.A.
        """
        if cve not in CVE_CATALOGUE:
            raise KeyError(f"unknown CVE: {cve}")
        package, announced = CVE_CATALOGUE[cve]
        snapshot_date = announced - _dt.timedelta(days=days_before_announcement)
        spec = self.build_container(snapshot_date, package)
        if cve not in spec.reproduced_cves:
            raise RuntimeError(
                f"snapshot {snapshot_date.isoformat()} of {package} does not reproduce {cve}"
            )
        return spec


__all__ = [
    "DebianRelease",
    "DEBIAN_RELEASES",
    "PackageVersion",
    "SnapshotRepository",
    "default_package_history",
    "CVE_CATALOGUE",
    "ContainerSpec",
    "VulnerabilityReproductionTool",
]
