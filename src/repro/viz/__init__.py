"""Attack-graph visualisation: build, lay out, annotate, export (Fig. 1)."""

from .annotate import AnnotationSummary, GraphAnnotator
from .export import export_dot, export_gexf, export_json, render_ascii_summary
from .graph_builder import (
    ConnectionGraphBuilder,
    GraphStats,
    ROLE_ATTACKER,
    ROLE_EXTERNAL,
    ROLE_INTERNAL,
    ROLE_MINOR_SCANNER,
    ROLE_SCANNER,
    ROLE_TARGET,
)
from .layout import (
    LayoutResult,
    fruchterman_reingold_layout,
    hub_centrality_check,
    multilevel_layout,
)

__all__ = [
    "ConnectionGraphBuilder",
    "GraphStats",
    "ROLE_SCANNER",
    "ROLE_MINOR_SCANNER",
    "ROLE_ATTACKER",
    "ROLE_TARGET",
    "ROLE_INTERNAL",
    "ROLE_EXTERNAL",
    "LayoutResult",
    "fruchterman_reingold_layout",
    "multilevel_layout",
    "hub_centrality_check",
    "GraphAnnotator",
    "AnnotationSummary",
    "export_dot",
    "export_json",
    "export_gexf",
    "render_ascii_summary",
]
