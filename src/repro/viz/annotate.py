"""Attacker-node annotation for the connection graph.

In the paper the attacker nodes of Fig. 1 were annotated manually by
cross-examining the ground truth of attacker IP addresses provided by
the factor-graph detector and the black-hole router's scanner records.
This module automates the same cross-examination: given a built graph,
detector output (detections carry the attacker's source IP) and the
router's per-source scan counters, it labels each node as mass scanner,
minor scanner, attacker, target, or legitimate.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

from ..core.attack_tagger import Detection
from ..testbed.bhr import BlackHoleRouter
from .graph_builder import (
    ConnectionGraphBuilder,
    ROLE_ATTACKER,
    ROLE_MINOR_SCANNER,
    ROLE_SCANNER,
    ROLE_TARGET,
)


@dataclasses.dataclass(frozen=True)
class AnnotationSummary:
    """Counts of annotated node roles."""

    mass_scanners: int
    minor_scanners: int
    attackers: int
    targets: int
    legitimate: int

    @property
    def total(self) -> int:
        """Total number of nodes annotated."""
        return (
            self.mass_scanners + self.minor_scanners + self.attackers + self.targets + self.legitimate
        )


class GraphAnnotator:
    """Labels graph nodes by cross-examining detector and router ground truth."""

    def __init__(
        self,
        builder: ConnectionGraphBuilder,
        *,
        mass_scanner_threshold: int = 5_000,
        minor_scanner_threshold: int = 50,
    ) -> None:
        self.builder = builder
        self.mass_scanner_threshold = int(mass_scanner_threshold)
        self.minor_scanner_threshold = int(minor_scanner_threshold)

    def annotate(
        self,
        *,
        detections: Sequence[Detection] = (),
        router: Optional[BlackHoleRouter] = None,
        known_attacker_ips: Iterable[str] = (),
    ) -> AnnotationSummary:
        """Annotate the graph in place and return role counts."""
        graph = self.builder.graph
        attacker_ips = set(known_attacker_ips)
        for detection in detections:
            if detection.trigger.source_ip:
                attacker_ips.add(detection.trigger.source_ip)

        mass = minor = attackers = targets = 0
        scan_counts = router.scan_counter if router is not None else {}
        for node, data in graph.nodes(data=True):
            count = scan_counts.get(node, 0)
            if node in attacker_ips:
                data["role"] = ROLE_ATTACKER
                attackers += 1
                for _, target in graph.out_edges(node):
                    graph.nodes[target]["role"] = ROLE_TARGET
            elif count >= self.mass_scanner_threshold:
                data["role"] = ROLE_SCANNER
                mass += 1
            elif count >= self.minor_scanner_threshold:
                data["role"] = ROLE_MINOR_SCANNER
                minor += 1
        targets = len(self.builder.nodes_with_role(ROLE_TARGET))
        legitimate = graph.number_of_nodes() - mass - minor - attackers - targets
        return AnnotationSummary(
            mass_scanners=mass,
            minor_scanners=minor,
            attackers=attackers,
            targets=targets,
            legitimate=max(0, legitimate),
        )


__all__ = ["AnnotationSummary", "GraphAnnotator"]
