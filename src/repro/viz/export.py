"""Graph export: Graphviz DOT, GEXF (Gephi), and JSON with layout.

The paper's Fig. 1 pipeline ends in Gephi; the reproduction exports the
annotated, laid-out graph in the formats that workflow consumes:

* DOT -- the edge-list format quoted verbatim in §II.B,
* GEXF -- Gephi's native format (via :mod:`networkx`), with roles and
  positions attached as node attributes,
* JSON -- a plain node/edge dump convenient for web viewers and tests.

All exporters apply the same privacy-preserving IP truncation used in
the paper unless told otherwise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import networkx as nx

from ..telemetry.logsource import anonymize_ip
from .graph_builder import ConnectionGraphBuilder
from .layout import LayoutResult


def _label(address: str, anonymize: bool) -> str:
    if not anonymize:
        return address
    truncated = anonymize_ip(address)
    return ".".join(truncated.split(".")[:2]) + "."


def export_dot(builder: ConnectionGraphBuilder, *, anonymize: bool = True,
               max_edges: Optional[int] = None) -> str:
    """Export the edge list in the paper's Graphviz digraph format."""
    return builder.to_graphviz(anonymize=anonymize, max_edges=max_edges)


def export_json(
    builder: ConnectionGraphBuilder,
    layout: Optional[LayoutResult] = None,
    *,
    anonymize: bool = True,
) -> str:
    """Export nodes (with roles and optional positions) and edges as JSON."""
    graph = builder.graph
    nodes = []
    for node, data in graph.nodes(data=True):
        entry = {"id": _label(node, anonymize), "role": data.get("role", "external")}
        if layout is not None and node in layout.positions:
            x, y = layout.positions[node]
            entry["x"] = float(x)
            entry["y"] = float(y)
        nodes.append(entry)
    edges = [
        {
            "source": _label(u, anonymize),
            "target": _label(v, anonymize),
            "kind": data.get("kind", "connection"),
            "weight": int(data.get("weight", 1)),
        }
        for u, v, data in graph.edges(data=True)
    ]
    return json.dumps({"nodes": nodes, "edges": edges}, indent=2)


def export_gexf(
    builder: ConnectionGraphBuilder,
    path: str | Path,
    layout: Optional[LayoutResult] = None,
    *,
    anonymize: bool = True,
) -> Path:
    """Write a GEXF file Gephi can open directly."""
    graph = builder.graph
    export_graph = nx.DiGraph()
    for node, data in graph.nodes(data=True):
        attrs = {"role": str(data.get("role", "external"))}
        if layout is not None and node in layout.positions:
            x, y = layout.positions[node]
            attrs["viz_x"] = float(x)
            attrs["viz_y"] = float(y)
        export_graph.add_node(_label(node, anonymize), **attrs)
    for u, v, data in graph.edges(data=True):
        export_graph.add_edge(
            _label(u, anonymize),
            _label(v, anonymize),
            kind=str(data.get("kind", "connection")),
            weight=int(data.get("weight", 1)),
        )
    path = Path(path)
    nx.write_gexf(export_graph, path)
    return path


def render_ascii_summary(builder: ConnectionGraphBuilder, layout: LayoutResult,
                         *, width: int = 60, height: int = 24) -> str:
    """A terminal-friendly density rendering of the laid-out graph.

    Not a substitute for Gephi, but enough to eyeball the Fig. 1
    structure (the dense scanner disc vs. sparse legitimate traffic)
    without leaving the test environment.
    """
    import numpy as np

    if not layout.positions:
        return "(empty graph)"
    coordinates = layout.as_array()
    minimum = coordinates.min(axis=0)
    maximum = coordinates.max(axis=0)
    span = np.maximum(maximum - minimum, 1e-9)
    grid = np.zeros((height, width), dtype=np.int64)
    scaled = (coordinates - minimum) / span
    columns = np.minimum((scaled[:, 0] * (width - 1)).astype(int), width - 1)
    rows = np.minimum((scaled[:, 1] * (height - 1)).astype(int), height - 1)
    for row, column in zip(rows, columns):
        grid[row, column] += 1
    palette = " .:-=+*#%@"
    maximum_count = max(1, grid.max())
    lines = []
    for row in grid:
        line = "".join(
            palette[min(len(palette) - 1, int(count / maximum_count * (len(palette) - 1)))]
            for count in row
        )
        lines.append(line)
    return "\n".join(lines)


__all__ = ["export_dot", "export_json", "export_gexf", "render_ascii_summary"]
