"""Connection-graph construction for the Fig. 1 visualisation.

Fig. 1 is a graph of one hour of border traffic: nodes are IP
addresses, edges are connections.  It mixes (A) the 10,000 most
frequent scans sampled from one mass scanner, (C) smaller scanners,
(D) legitimate connections recorded by Zeek, and (B) a real attack --
two connections from an external attacker to two internal hosts.  The
published graph has 29,075 nodes and 27,336 edges.

:class:`ConnectionGraphBuilder` assembles that graph (as a
:class:`networkx.DiGraph`) from the same inputs the paper used: the
black-hole router's scan records, Zeek connection records, and the
attack ground truth used for annotation.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Sequence

import networkx as nx

from ..telemetry.zeek import ConnRecord
from ..testbed.bhr import ScanRecord

#: Node role labels used by the annotator and the exporters.
ROLE_SCANNER = "mass_scanner"
ROLE_MINOR_SCANNER = "scanner"
ROLE_ATTACKER = "attacker"
ROLE_TARGET = "target"
ROLE_INTERNAL = "internal"
ROLE_EXTERNAL = "external"


@dataclasses.dataclass(frozen=True)
class GraphStats:
    """Size statistics of a built graph (the numbers quoted in Fig. 1)."""

    nodes: int
    edges: int
    scanner_edges: int
    legitimate_edges: int
    attack_edges: int


class ConnectionGraphBuilder:
    """Builds the Fig. 1-style connection graph."""

    def __init__(self, *, internal_prefixes: Sequence[str] = ("141.142.", "143.219.")) -> None:
        self.internal_prefixes = tuple(internal_prefixes)
        self.graph = nx.DiGraph()
        self._scanner_edges = 0
        self._legitimate_edges = 0
        self._attack_edges = 0

    # ------------------------------------------------------------------
    def _node_role(self, address: str) -> str:
        if any(address.startswith(prefix) for prefix in self.internal_prefixes):
            return ROLE_INTERNAL
        return ROLE_EXTERNAL

    def _ensure_node(self, address: str, **attrs) -> None:
        if address not in self.graph:
            self.graph.add_node(address, role=self._node_role(address), **attrs)
        else:
            self.graph.nodes[address].update({k: v for k, v in attrs.items() if v is not None})

    def _add_edge(self, source: str, destination: str, kind: str, **attrs) -> None:
        self._ensure_node(source)
        self._ensure_node(destination)
        if self.graph.has_edge(source, destination):
            self.graph[source][destination]["weight"] += 1
        else:
            self.graph.add_edge(source, destination, kind=kind, weight=1, **attrs)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def add_scan_records(
        self, records: Iterable[ScanRecord], *, dominant_scanner: Optional[str] = None
    ) -> int:
        """Add black-hole-router scan records (Fig. 1 parts A and C)."""
        added = 0
        for record in records:
            self._add_edge(record.source_ip, record.destination_ip, "scan",
                           port=record.destination_port)
            self._scanner_edges += 1
            added += 1
        if dominant_scanner is not None and dominant_scanner in self.graph:
            self.graph.nodes[dominant_scanner]["role"] = ROLE_SCANNER
        return added

    def add_connections(self, records: Iterable[ConnRecord]) -> int:
        """Add legitimate Zeek connection records (Fig. 1 part D)."""
        added = 0
        for record in records:
            self._add_edge(record.orig_h, record.resp_h, "connection",
                           service=record.service)
            self._legitimate_edges += 1
            added += 1
        return added

    def add_attack(self, attacker_ip: str, target_ips: Sequence[str]) -> int:
        """Add the real attack's connections (Fig. 1 part B)."""
        for target in target_ips:
            self._add_edge(attacker_ip, target, "attack")
            self.graph.nodes[target]["role"] = ROLE_TARGET
            self._attack_edges += 1
        self.graph.nodes[attacker_ip]["role"] = ROLE_ATTACKER
        return len(target_ips)

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Node/edge counts of the built graph."""
        return GraphStats(
            nodes=self.graph.number_of_nodes(),
            edges=self.graph.number_of_edges(),
            scanner_edges=self._scanner_edges,
            legitimate_edges=self._legitimate_edges,
            attack_edges=self._attack_edges,
        )

    def nodes_with_role(self, role: str) -> list[str]:
        """Addresses of nodes with a given role label."""
        return [n for n, data in self.graph.nodes(data=True) if data.get("role") == role]

    def scanner_nodes(self) -> list[str]:
        """Sources that only ever appear as scan origins."""
        scanners = []
        for node in self.graph.nodes:
            out_edges = self.graph.out_edges(node, data=True)
            if not out_edges:
                continue
            if all(data.get("kind") == "scan" for _, _, data in out_edges) and self.graph.in_degree(node) == 0:
                scanners.append(node)
        return scanners

    def degree_distribution(self) -> dict[int, int]:
        """Histogram of total node degrees (scanner hubs dominate)."""
        histogram: dict[int, int] = {}
        for _, degree in self.graph.degree():
            histogram[degree] = histogram.get(degree, 0) + 1
        return dict(sorted(histogram.items()))

    def to_graphviz(self, *, anonymize: bool = True, max_edges: Optional[int] = None) -> str:
        """Render the edge list in the Graphviz digraph format of §II.B.

        With ``anonymize`` (the default, matching the paper) only the
        first two octets of each address are printed.
        """
        from ..telemetry.logsource import anonymize_ip

        lines = ["digraph {"]
        for index, (source, destination) in enumerate(self.graph.edges):
            if max_edges is not None and index >= max_edges:
                lines.append("  ...")
                break
            if anonymize:
                source_label = anonymize_ip(source).rsplit(".", 2)[0] + "."
                dest_label = anonymize_ip(destination).rsplit(".", 2)[0] + "."
            else:
                source_label, dest_label = source, destination
            lines.append(f"  \"{source_label}\" -> \"{dest_label}\"")
        lines.append("}")
        return "\n".join(lines)


__all__ = [
    "ROLE_SCANNER",
    "ROLE_MINOR_SCANNER",
    "ROLE_ATTACKER",
    "ROLE_TARGET",
    "ROLE_INTERNAL",
    "ROLE_EXTERNAL",
    "GraphStats",
    "ConnectionGraphBuilder",
]
