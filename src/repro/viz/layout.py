"""Force-directed graph layout (the Gephi / Yifan-Hu rendering step).

The paper renders Fig. 1 with Gephi using Hu's force-directed
algorithm; the characteristic picture -- the mass scanner at the centre
of a dense circle of scanned addresses -- is a direct consequence of
force-directed placement of a star-shaped subgraph.  The reproduction
implements a NumPy-vectorised Fruchterman-Reingold layout with the two
standard large-graph accelerations Hu's method popularised:
Barnes-Hut-style far-field approximation via a coarse grid, and a
multilevel schedule (coarsen by star contraction, lay out the coarse
graph, then refine).

The layout is deterministic for a fixed seed and is exercised by the
Fig. 1 benchmark on graphs in the tens of thousands of nodes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import networkx as nx
import numpy as np


@dataclasses.dataclass
class LayoutResult:
    """Positions plus convergence diagnostics."""

    positions: dict[str, np.ndarray]
    iterations: int
    final_max_displacement: float

    def as_array(self, nodes: Optional[list[str]] = None) -> np.ndarray:
        """Positions stacked into an (n, 2) array in ``nodes`` order."""
        nodes = nodes if nodes is not None else list(self.positions)
        return np.vstack([self.positions[node] for node in nodes])


def _repulsion_grid(
    positions: np.ndarray, k: float, *, cell_size: float
) -> np.ndarray:
    """Approximate repulsive forces using a coarse grid.

    Nodes interact exactly with the members of their own and neighbouring
    grid cells and see remote cells as a single point mass at the cell
    centroid -- the O(n log n)-style approximation that makes the layout
    usable at Fig. 1 scale.
    """
    n = positions.shape[0]
    forces = np.zeros_like(positions)
    if n <= 1:
        return forces
    cells = np.floor(positions / cell_size).astype(np.int64)
    cell_keys = [tuple(c) for c in cells]
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, key in enumerate(cell_keys):
        buckets.setdefault(key, []).append(index)
    centroids = {key: positions[idx].mean(axis=0) for key, idx in buckets.items()}
    masses = {key: len(idx) for key, idx in buckets.items()}
    keys = list(buckets)
    centroid_matrix = np.vstack([centroids[key] for key in keys])
    mass_vector = np.array([masses[key] for key in keys], dtype=np.float64)

    for key, members in buckets.items():
        local = list(members)
        for neighbour in (
            (key[0] + dx, key[1] + dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
        ):
            if neighbour != key and neighbour in buckets:
                local.extend(buckets[neighbour])
        member_positions = positions[members]
        local_positions = positions[local]
        # Exact near-field repulsion.
        delta = member_positions[:, None, :] - local_positions[None, :, :]
        distance = np.linalg.norm(delta, axis=2)
        np.maximum(distance, 1e-3, out=distance)
        force = (k * k) / (distance * distance)
        np.fill_diagonal(force[:, : len(members)], 0.0) if len(members) == len(local) else None
        near = (delta / distance[:, :, None] * force[:, :, None]).sum(axis=1)
        # Far-field: remote cells as point masses.
        delta_far = member_positions[:, None, :] - centroid_matrix[None, :, :]
        distance_far = np.linalg.norm(delta_far, axis=2)
        np.maximum(distance_far, cell_size, out=distance_far)
        force_far = mass_vector[None, :] * (k * k) / (distance_far * distance_far)
        far = (delta_far / distance_far[:, :, None] * force_far[:, :, None]).sum(axis=1)
        forces[members] += near + far
    return forces


def fruchterman_reingold_layout(
    graph: nx.Graph,
    *,
    iterations: int = 50,
    seed: int = 0,
    k: Optional[float] = None,
    initial_positions: Optional[dict[str, np.ndarray]] = None,
    use_grid_above: int = 2_000,
) -> LayoutResult:
    """Vectorised Fruchterman-Reingold layout.

    For graphs larger than ``use_grid_above`` nodes the repulsion term
    switches to the grid approximation; attraction is always computed
    exactly over the edge list (sparse).
    """
    nodes = list(graph.nodes)
    n = len(nodes)
    if n == 0:
        return LayoutResult(positions={}, iterations=0, final_max_displacement=0.0)
    index = {node: i for i, node in enumerate(nodes)}
    rng = np.random.default_rng(seed)
    if initial_positions:
        positions = np.vstack(
            [initial_positions.get(node, rng.uniform(-1, 1, size=2)) for node in nodes]
        ).astype(np.float64)
    else:
        positions = rng.uniform(-1.0, 1.0, size=(n, 2))
    area = 4.0
    k = k if k is not None else float(np.sqrt(area / n))
    if graph.number_of_edges():
        edges = np.array([(index[u], index[v]) for u, v in graph.edges], dtype=np.int64)
        weights = np.array(
            [float(data.get("weight", 1.0)) for _, _, data in graph.edges(data=True)]
        )
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
        weights = np.zeros(0)

    temperature = 0.1 * float(np.sqrt(area))
    cooling = temperature / max(1, iterations)
    max_displacement = 0.0

    for _ in range(iterations):
        if n > use_grid_above:
            repulsion = _repulsion_grid(positions, k, cell_size=2.0 * k)
        else:
            delta = positions[:, None, :] - positions[None, :, :]
            distance = np.linalg.norm(delta, axis=2)
            np.maximum(distance, 1e-3, out=distance)
            force = (k * k) / (distance * distance)
            np.fill_diagonal(force, 0.0)
            repulsion = (delta / distance[:, :, None] * force[:, :, None]).sum(axis=1)
        attraction = np.zeros_like(positions)
        if edges.size:
            delta = positions[edges[:, 0]] - positions[edges[:, 1]]
            distance = np.linalg.norm(delta, axis=1)
            np.maximum(distance, 1e-3, out=distance)
            force = (distance * distance) / k * weights
            vector = delta / distance[:, None] * force[:, None]
            np.add.at(attraction, edges[:, 0], -vector)
            np.add.at(attraction, edges[:, 1], vector)
        displacement = repulsion + attraction
        length = np.linalg.norm(displacement, axis=1)
        np.maximum(length, 1e-6, out=length)
        limited = displacement / length[:, None] * np.minimum(length, temperature)[:, None]
        positions += limited
        max_displacement = float(np.max(np.linalg.norm(limited, axis=1)))
        temperature = max(temperature - cooling, 1e-3)

    return LayoutResult(
        positions={node: positions[index[node]].copy() for node in nodes},
        iterations=iterations,
        final_max_displacement=max_displacement,
    )


def _coarsen_stars(graph: nx.Graph, *, min_degree: int = 50) -> tuple[nx.Graph, dict[str, str]]:
    """Contract leaf nodes of high-degree hubs into a single super-node.

    Mass-scanner stars (one source, tens of thousands of leaf targets)
    collapse to hub + super-leaf, which is what makes the multilevel
    schedule fast on Fig. 1-shaped graphs.
    """
    mapping: dict[str, str] = {}
    coarse = nx.Graph()
    hubs = {node for node, degree in graph.degree() if degree >= min_degree}
    for node in graph.nodes:
        if node in hubs:
            mapping[node] = node
            continue
        neighbours = list(graph.neighbors(node))
        hub_neighbours = [h for h in neighbours if h in hubs]
        if len(neighbours) == 1 and hub_neighbours:
            mapping[node] = f"__leafcluster__{hub_neighbours[0]}"
        else:
            mapping[node] = node
    for node in set(mapping.values()):
        coarse.add_node(node)
    for u, v, data in graph.edges(data=True):
        cu, cv = mapping[u], mapping[v]
        if cu == cv:
            continue
        if coarse.has_edge(cu, cv):
            coarse[cu][cv]["weight"] += data.get("weight", 1.0)
        else:
            coarse.add_edge(cu, cv, weight=data.get("weight", 1.0))
    return coarse, mapping


def multilevel_layout(
    graph: nx.Graph,
    *,
    iterations: int = 50,
    refine_iterations: int = 15,
    seed: int = 0,
    min_hub_degree: int = 50,
) -> LayoutResult:
    """Yifan-Hu-style multilevel layout: coarsen, lay out, refine.

    Falls back to a single-level layout when coarsening does not shrink
    the graph meaningfully.
    """
    undirected = graph.to_undirected() if graph.is_directed() else graph
    coarse, mapping = _coarsen_stars(undirected, min_degree=min_hub_degree)
    if coarse.number_of_nodes() >= 0.9 * undirected.number_of_nodes():
        return fruchterman_reingold_layout(undirected, iterations=iterations, seed=seed)
    coarse_layout = fruchterman_reingold_layout(coarse, iterations=iterations, seed=seed)
    rng = np.random.default_rng(seed + 1)
    initial = {}
    for node, coarse_node in mapping.items():
        base = coarse_layout.positions[coarse_node]
        jitter = rng.normal(scale=0.02, size=2) if node != coarse_node else np.zeros(2)
        initial[node] = base + jitter
    refined = fruchterman_reingold_layout(
        undirected,
        iterations=refine_iterations,
        seed=seed + 2,
        initial_positions=initial,
    )
    return LayoutResult(
        positions=refined.positions,
        iterations=iterations + refine_iterations,
        final_max_displacement=refined.final_max_displacement,
    )


def hub_centrality_check(layout: LayoutResult, graph: nx.Graph, hub: str) -> float:
    """How central the hub sits relative to its leaves (Fig. 1 sanity check).

    Returns the ratio of the hub's distance from the leaf centroid to
    the mean leaf distance from that centroid; values well below 1 mean
    the hub is at the centre of its circle of leaves, which is the
    visual signature of the mass scanner in Fig. 1.
    """
    undirected = graph.to_undirected() if graph.is_directed() else graph
    leaves = [n for n in undirected.neighbors(hub)]
    if not leaves:
        return 0.0
    leaf_positions = layout.as_array(leaves)
    centroid = leaf_positions.mean(axis=0)
    hub_distance = float(np.linalg.norm(layout.positions[hub] - centroid))
    mean_leaf_distance = float(np.mean(np.linalg.norm(leaf_positions - centroid, axis=1)))
    if mean_leaf_distance == 0.0:
        return 0.0
    return hub_distance / mean_leaf_distance


__all__ = [
    "LayoutResult",
    "fruchterman_reingold_layout",
    "multilevel_layout",
    "hub_centrality_check",
]
