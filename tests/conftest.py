"""Shared fixtures for the test suite.

Expensive objects (the full synthetic corpus, trained parameters, the
honeypot) are built once per session; tests that mutate state build
their own instances.

The shared-memory transport additionally arms an autouse leak hunter:
every test runs between two snapshots of the ``/dev/shm`` ring
segments and of the parent-side resource-tracker registrations, so any
lifecycle path that forgets to ``unlink()`` a ring (close, escalated
close, reshard, crash+heal, ``__exit__`` on error, ...) fails the test
that leaked it rather than surfacing as a tracker warning at exit.
"""

from __future__ import annotations

import multiprocessing.resource_tracker as _resource_tracker
import os

import pytest

from repro.core import DEFAULT_VOCABULARY, train_from_incidents
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import Honeypot, build_default_topology
from repro.testbed.shm_ring import SEGMENT_PREFIX

# -- shm leak hunting -------------------------------------------------
#
# ``SharedMemory`` registers segments with the resource tracker under
# their leading-slash posix name; wrapping register/unregister at
# import time lets the fixture assert that every ring created in the
# parent process was balanced by an unlink before the test ended --
# which is exactly the condition for "no resource_tracker warnings at
# interpreter exit".  Only ring-prefixed names are tracked; all other
# shared memory is passed through untouched.

_LIVE_RING_REGISTRATIONS: set = set()
_original_register = _resource_tracker.register
_original_unregister = _resource_tracker.unregister


def _tracking_register(name, rtype):
    if rtype == "shared_memory" and SEGMENT_PREFIX in name:
        _LIVE_RING_REGISTRATIONS.add(name)
    return _original_register(name, rtype)


def _tracking_unregister(name, rtype):
    if rtype == "shared_memory" and SEGMENT_PREFIX in name:
        _LIVE_RING_REGISTRATIONS.discard(name)
    return _original_unregister(name, rtype)


_resource_tracker.register = _tracking_register
_resource_tracker.unregister = _tracking_unregister


def ring_segments_on_disk() -> set:
    """Names of ring segments currently backing files in ``/dev/shm``."""
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except OSError:  # pragma: no cover - non-POSIX /dev/shm layout
        return set()


@pytest.fixture(autouse=True)
def no_leaked_ring_segments():
    """Fail any test that leaks a ring segment or tracker registration."""
    disk_before = ring_segments_on_disk()
    tracked_before = set(_LIVE_RING_REGISTRATIONS)
    yield
    leaked = ring_segments_on_disk() - disk_before
    assert not leaked, f"leaked /dev/shm ring segment(s): {sorted(leaked)}"
    dangling = _LIVE_RING_REGISTRATIONS - tracked_before
    assert not dangling, (
        "ring segment(s) left registered with the resource tracker "
        f"(unlink never ran): {sorted(dangling)}"
    )


@pytest.fixture(scope="session")
def generator():
    """A seeded incident generator (session-wide)."""
    return IncidentGenerator(seed=7)


@pytest.fixture(scope="session")
def corpus(generator):
    """The default 228-incident synthetic corpus."""
    return generator.generate_corpus()


@pytest.fixture(scope="session")
def benign_sequences():
    """Benign per-entity sequences for training/evaluation negatives."""
    return IncidentGenerator(seed=99).generate_benign_sequences(120)


@pytest.fixture(scope="session")
def trained_parameters(corpus, benign_sequences):
    """Factor parameters trained on the full corpus plus benign traffic."""
    return train_from_incidents(
        corpus.attack_sequences(),
        benign_sequences,
        vocabulary=DEFAULT_VOCABULARY,
        patterns=list(DEFAULT_CATALOGUE),
    )


@pytest.fixture()
def honeypot():
    """A fresh honeypot per test (tests compromise it)."""
    return Honeypot()


@pytest.fixture(scope="session")
def topology():
    """The default simulated cluster topology (read-mostly)."""
    return build_default_topology()
