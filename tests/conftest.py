"""Shared fixtures for the test suite.

Expensive objects (the full synthetic corpus, trained parameters, the
honeypot) are built once per session; tests that mutate state build
their own instances.
"""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_VOCABULARY, train_from_incidents
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import Honeypot, build_default_topology


@pytest.fixture(scope="session")
def generator():
    """A seeded incident generator (session-wide)."""
    return IncidentGenerator(seed=7)


@pytest.fixture(scope="session")
def corpus(generator):
    """The default 228-incident synthetic corpus."""
    return generator.generate_corpus()


@pytest.fixture(scope="session")
def benign_sequences():
    """Benign per-entity sequences for training/evaluation negatives."""
    return IncidentGenerator(seed=99).generate_benign_sequences(120)


@pytest.fixture(scope="session")
def trained_parameters(corpus, benign_sequences):
    """Factor parameters trained on the full corpus plus benign traffic."""
    return train_from_incidents(
        corpus.attack_sequences(),
        benign_sequences,
        vocabulary=DEFAULT_VOCABULARY,
        patterns=list(DEFAULT_CATALOGUE),
    )


@pytest.fixture()
def honeypot():
    """A fresh honeypot per test (tests compromise it)."""
    return Honeypot()


@pytest.fixture(scope="session")
def topology():
    """The default simulated cluster topology (read-mostly)."""
    return build_default_topology()
