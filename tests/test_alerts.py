"""Tests for the symbolic alert vocabulary and Alert records."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alerts import (
    Alert,
    AlertCategory,
    AlertTypeSpec,
    AlertVocabulary,
    DEFAULT_VOCABULARY,
    Severity,
    build_default_vocabulary,
    pack_alert_columns,
    sort_alerts,
    unpack_alert_columns,
)
from repro.core.states import AttackStage


class TestAlertTypeSpec:
    def test_requires_alert_prefix(self):
        with pytest.raises(ValueError):
            AlertTypeSpec("bad_name", AlertCategory.BENIGN, Severity.INFO, AttackStage.BACKGROUND)

    def test_critical_requires_critical_severity(self):
        with pytest.raises(ValueError):
            AlertTypeSpec(
                "alert_x", AlertCategory.MALWARE, Severity.HIGH, AttackStage.ACTIONS, critical=True
            )


class TestVocabulary:
    def test_default_vocabulary_has_19_critical_alerts(self):
        assert len(DEFAULT_VOCABULARY.critical_names()) == 19

    def test_all_critical_alerts_have_critical_severity(self):
        for name in DEFAULT_VOCABULARY.critical_names():
            assert DEFAULT_VOCABULARY.get(name).severity is Severity.CRITICAL

    def test_duplicate_registration_rejected(self):
        vocab = AlertVocabulary()
        vocab.define("alert_a", AlertCategory.BENIGN, Severity.INFO, AttackStage.BACKGROUND)
        with pytest.raises(ValueError):
            vocab.define("alert_a", AlertCategory.BENIGN, Severity.INFO, AttackStage.BACKGROUND)

    def test_index_of_is_stable_and_dense(self):
        names = DEFAULT_VOCABULARY.names()
        indices = [DEFAULT_VOCABULARY.index_of(n) for n in names]
        assert indices == list(range(len(names)))

    def test_build_default_vocabulary_is_reconstructible(self):
        vocab = build_default_vocabulary()
        assert vocab.names() == DEFAULT_VOCABULARY.names()

    def test_names_for_stage_partition(self):
        total = sum(
            len(DEFAULT_VOCABULARY.names_for_stage(stage)) for stage in AttackStage
        )
        assert total == len(DEFAULT_VOCABULARY)

    def test_contains_known_paper_alerts(self):
        for name in (
            "alert_download_sensitive",
            "alert_compile_kernel_module",
            "alert_erase_forensic_trace",
            "alert_db_largeobject_payload",
            "alert_outbound_c2",
            "alert_lateral_ssh_batch",
            "alert_pii_in_http",
            "alert_privilege_escalation",
        ):
            assert name in DEFAULT_VOCABULARY

    def test_critical_alerts_are_damage_indicators(self):
        for name in DEFAULT_VOCABULARY.critical_names():
            spec = DEFAULT_VOCABULARY.get(name)
            assert spec.severity is Severity.CRITICAL


class TestAlert:
    def test_round_trip_dict(self):
        alert = Alert(
            timestamp=123.5,
            name="alert_download_sensitive",
            entity="user:alice",
            source_ip="64.215.1.2",
            host="login00",
            monitor="syslog",
            attributes={"url": "http://64.215.1.2/abs.c"},
        )
        assert Alert.from_dict(alert.to_dict()) == alert

    def test_spec_lookup_and_criticality(self):
        alert = Alert(0.0, "alert_privilege_escalation", "user:x")
        assert alert.is_critical()
        assert alert.stage() is AttackStage.ESCALATION
        benign = Alert(0.0, "alert_login_normal", "user:x")
        assert not benign.is_critical()

    def test_with_entity_returns_copy(self):
        alert = Alert(0.0, "alert_login_normal", "user:a")
        other = alert.with_entity("user:b")
        assert other.entity == "user:b"
        assert alert.entity == "user:a"

    def test_sort_alerts(self):
        alerts = [
            Alert(5.0, "alert_login_normal", "user:a"),
            Alert(1.0, "alert_login_normal", "user:a"),
            Alert(3.0, "alert_login_normal", "user:a"),
        ]
        assert [a.timestamp for a in sort_alerts(alerts)] == [1.0, 3.0, 5.0]

    def test_unknown_alert_name_raises_on_spec(self):
        alert = Alert(0.0, "alert_not_registered", "user:a")
        with pytest.raises(KeyError):
            alert.spec()


#: Arbitrary-unicode alert batches for the columnar wire round-trip.
#: ``pack_alert_columns`` never consults the vocabulary, so names are
#: unconstrained text (surrogates excluded: they are unencodable and
#: cannot cross a process boundary anyway).
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
_timestamps = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)
_attribute_values = st.one_of(
    _text, st.integers(min_value=-(2**40), max_value=2**40), st.booleans()
)
_alert_strategy = st.builds(
    Alert,
    timestamp=_timestamps,
    name=_text,
    entity=_text,
    source_ip=_text,
    host=_text,
    monitor=_text,
    attributes=st.dictionaries(_text, _attribute_values, max_size=4),
)
_batch_strategy = st.lists(_alert_strategy, min_size=0, max_size=12)


class TestAlertColumnsRoundTrip:
    """Property: the columnar wire representation is lossless."""

    @given(_batch_strategy)
    @settings(max_examples=120, deadline=None)
    def test_pack_unpack_reconstructs_alerts_exactly(self, batch):
        rebuilt = unpack_alert_columns(pack_alert_columns(batch))
        assert rebuilt == batch
        # Alert equality excludes ``attributes`` (compare=False), so
        # exact reconstruction of the metadata is asserted separately.
        for original, copy in zip(batch, rebuilt):
            assert dict(copy.attributes) == dict(original.attributes)

    @given(_batch_strategy)
    @settings(max_examples=60, deadline=None)
    def test_attributes_column_elided_exactly_when_all_empty(self, batch):
        columns = pack_alert_columns(batch)
        if any(alert.attributes for alert in batch):
            assert columns[-1] is not None
        else:
            assert columns[-1] is None
        assert unpack_alert_columns(columns) == batch

    def test_empty_batch_round_trips(self):
        columns = pack_alert_columns([])
        assert columns[-1] is None
        assert unpack_alert_columns(columns) == []
