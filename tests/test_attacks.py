"""Tests for attack emulation: scanners, brute force, credential theft,
lateral movement, the ransomware case study, and replay."""

from __future__ import annotations

import pytest

from repro.attacks import (
    BruteForceEmulator,
    GhostAccountScenario,
    KNOWN_VARIANTS,
    LateralMovementEngine,
    MassScanEmulator,
    RansomwareScenario,
    ReplayEngine,
    StolenCredentialScenario,
    alerts_to_names,
    password_spray_alerts,
    run_variant,
)
from repro.attacks.ransomware import C2_SERVER, INITIAL_ATTACKER
from repro.core import AttackTagger, CriticalAlertDetector, evaluate_preemption
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import BlackHoleRouter, Honeypot, build_default_topology
from repro.testbed.isolation import EgressVerdict


class TestMassScanEmulator:
    def test_profiles_sum_to_total(self):
        emulator = MassScanEmulator(seed=1)
        profiles = emulator.default_profiles(total_scans=10_000, dominant_fraction=0.8)
        assert profiles[0].scans == 8_000
        assert sum(p.scans for p in profiles) <= 10_000

    def test_scan_records_target_production_space(self):
        emulator = MassScanEmulator(seed=1)
        records = emulator.generate_scan_records(
            emulator.default_profiles(total_scans=500), duration_seconds=60.0
        )
        assert len(records) <= 500
        assert all(r.destination_ip.startswith("141.142.") for r in records)
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_sample_most_frequent_takes_dominant_source(self):
        emulator = MassScanEmulator(seed=1)
        records = emulator.generate_scan_records(emulator.default_profiles(total_scans=2_000))
        sample = emulator.sample_most_frequent(records, sample_size=100)
        assert len(sample) == 100
        assert len({r.source_ip for r in sample}) == 1

    def test_feed_router(self):
        router = BlackHoleRouter()
        emulator = MassScanEmulator(seed=2)
        count = emulator.feed_router(router, emulator.default_profiles(total_scans=800))
        assert router.scan_count() == count


class TestBruteForce:
    def test_succeeds_against_weak_account(self, honeypot):
        service = honeypot.entry_point("entry00").ssh
        emulator = BruteForceEmulator(passwords=("admin-00", "123456"), seed=3)
        result = emulator.run(service, attacker_ip="45.9.1.1")
        assert result.succeeded
        assert ("admin", "admin-00") in result.successes
        assert any(a.name == "alert_login_stolen_credential" for a in result.alerts)

    def test_fails_with_wrong_dictionary(self, honeypot):
        service = honeypot.entry_point("entry01").ssh
        emulator = BruteForceEmulator(passwords=("wrong1", "wrong2"), seed=3)
        result = emulator.run(service, attacker_ip="45.9.1.1", max_attempts=10)
        assert not result.succeeded
        assert result.attempts == 10

    def test_password_spray_alert_stream(self):
        alerts = password_spray_alerts(["h1", "h2", "h3"], attacker_ip="45.9.1.1")
        assert [a.name for a in alerts] == ["alert_password_spray"] * 3
        assert alerts[-1].timestamp > alerts[0].timestamp


class TestCredentialScenarios:
    def test_stolen_credential_chain_contains_motif(self):
        result = StolenCredentialScenario().run(start_time=0.0)
        names = alerts_to_names(result.alerts)
        assert "alert_download_sensitive" in names
        assert "alert_compile_kernel_module" in names
        assert names[-1] == "alert_erase_forensic_trace"
        assert result.duration_seconds > 0

    def test_stop_after_truncates(self):
        result = StolenCredentialScenario().run(start_time=0.0, stop_after="compile")
        names = alerts_to_names(result.alerts)
        assert "alert_privilege_escalation" not in names

    def test_ghost_account_scenario(self, honeypot):
        result = GhostAccountScenario(honeypot).run(start_time=0.0)
        names = alerts_to_names(result.alerts)
        assert names[0] == "alert_ghost_account_login"
        assert "alert_pii_in_http" in names


class TestLateralMovement:
    def test_spread_follows_trust_edges(self, topology):
        engine = LateralMovementEngine(topology, max_hosts=10)
        origin = topology.hosts()[5].name
        result = engine.run(origin, entity="user:mallory", start_time=0.0)
        assert result.blast_radius <= 10
        for event in result.infections:
            assert event.target_host in topology.reachable_via_ssh(origin) or event.source_host != origin
        assert result.logs_wiped
        assert "alert_ssh_key_enumeration" in [a.name for a in result.alerts]

    def test_infected_hosts_marked_compromised(self):
        topology = build_default_topology(num_compute=16, trust_density=0.2, seed=4)
        engine = LateralMovementEngine(topology, max_hosts=5)
        result = engine.run(topology.hosts()[0].name, entity="user:mallory")
        for host in result.infected_hosts:
            assert topology.host(host).compromised

    def test_max_hosts_respected(self, topology):
        engine = LateralMovementEngine(topology, max_hosts=3)
        result = engine.run(topology.hosts(role=None)[0].name, entity="user:m")
        assert result.blast_radius <= 3


class TestRansomwareScenario:
    def test_full_kill_chain_alert_order(self, honeypot, topology):
        scenario = RansomwareScenario(honeypot, topology=topology)
        result = scenario.run_honeypot_capture(start_time=0.0)
        names = alerts_to_names(result.alerts)
        assert names.count("alert_db_port_probe") >= 6
        for expected in (
            "alert_db_default_password_login",
            "alert_service_version_probe",
            "alert_db_largeobject_payload",
            "alert_tmp_executable_created",
            "alert_outbound_c2",
            "alert_ransom_note_created",
        ):
            assert expected in names
        # Staging precedes C2, which precedes impact.
        assert names.index("alert_db_largeobject_payload") < names.index("alert_outbound_c2")
        assert names.index("alert_outbound_c2") < names.index("alert_ransom_note_created")

    def test_c2_beacon_is_contained_by_egress_policy(self, honeypot):
        scenario = RansomwareScenario(honeypot)
        result = scenario.run_honeypot_capture(start_time=0.0)
        attempt = result.context.artifacts["c2_attempt"]
        assert attempt.destination_ip == C2_SERVER
        assert attempt.verdict is EgressVerdict.DROPPED
        assert honeypot.egress.escaped_attempts() == []

    def test_honeypot_service_compromised_and_payload_dropped(self, honeypot):
        scenario = RansomwareScenario(honeypot)
        scenario.run_honeypot_capture(start_time=0.0)
        service = honeypot.entry_point("entry00").postgres
        assert "/tmp/kp" in service.exported_files
        assert service.large_objects

    def test_factor_graph_preempts_before_damage(self, honeypot, topology, trained_parameters):
        scenario = RansomwareScenario(honeypot, topology=topology)
        result = scenario.run_honeypot_capture(start_time=0.0)
        tagger = AttackTagger(trained_parameters, patterns=list(DEFAULT_CATALOGUE))
        sequence = __import__("repro.core.sequences", fromlist=["AlertSequence"]).AlertSequence.from_alerts(result.alerts)
        detection = tagger.run_sequence(sequence, entity="host:honeypot")
        preemption = evaluate_preemption(sequence, detection)
        assert preemption.preempted
        # The critical-only baseline detects only at/after damage.
        late = CriticalAlertDetector().run_sequence(sequence, entity="host:late")
        late_result = evaluate_preemption(sequence, late)
        assert late_result.detected and not late_result.preempted
        assert preemption.lead_time_seconds > (late_result.lead_time_seconds or 0.0)

    def test_attacker_attribution_via_hint(self, honeypot):
        scenario = RansomwareScenario(honeypot)
        result = scenario.run_honeypot_capture(start_time=0.0)
        hint = result.context.artifacts["hint"]
        assert honeypot.trace_attacker(hint.username, hint.password) is hint

    def test_variants_differ(self, honeypot, topology):
        results = {
            variant.name: run_variant(variant, Honeypot(), topology=topology)
            for variant in KNOWN_VARIANTS
        }
        quiet = alerts_to_names(results["kp-quiet"].alerts)
        classic = alerts_to_names(results["kp-classic"].alerts)
        assert "alert_download_second_stage" not in quiet
        assert "alert_download_second_stage" in classic
        smash = alerts_to_names(results["kp-smash"].alerts)
        assert "alert_lateral_ssh_batch" not in smash

    def test_attacker_ip_matches_case_study(self, honeypot):
        result = RansomwareScenario(honeypot).run_honeypot_capture()
        assert result.alerts[0].source_ip == INITIAL_ATTACKER


class TestReplayEngine:
    def test_compression_preserves_order_and_scales_gaps(self):
        result = StolenCredentialScenario().run(start_time=0.0)
        engine = ReplayEngine(time_compression=10.0)
        compressed = engine.compress(result.alerts)
        assert [a.name for a in compressed] == alerts_to_names(result.alerts)
        original_span = result.alerts[-1].timestamp - result.alerts[0].timestamp
        new_span = compressed[-1].timestamp - compressed[0].timestamp
        assert new_span == pytest.approx(original_span / 10.0)

    def test_replay_into_detector(self):
        result = StolenCredentialScenario().run(start_time=0.0)
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        replay = ReplayEngine().replay_into_detector(result.alerts, tagger)
        assert replay.num_alerts == len(result.alerts)
        assert replay.detections
        entity = result.alerts[0].entity
        assert replay.first_detection_time(entity) is not None

    def test_replay_corpus_per_incident_detectors(self, corpus):
        engine = ReplayEngine()
        results = engine.replay_corpus(
            corpus, lambda: AttackTagger(patterns=list(DEFAULT_CATALOGUE)), limit=10
        )
        assert len(results) == 10
        detected = sum(1 for r in results.values() if r.detections)
        assert detected >= 8

    def test_interleave_is_time_ordered(self):
        a = StolenCredentialScenario().run(start_time=0.0).alerts
        b = StolenCredentialScenario(seed=2).run(start_time=100.0).alerts
        merged = ReplayEngine.interleave(a, b)
        times = [alert.timestamp for alert in merged]
        assert times == sorted(times)

    def test_invalid_compression_rejected(self):
        with pytest.raises(ValueError):
            ReplayEngine(time_compression=0.0)
