"""Bit-identity suite for the vectorised cross-entity decode kernel.

``engine="batched"`` must be a pure performance optimisation: for every
stream, every sub-batch shape, and every window size it must emit
exactly the detections -- same trigger positions, states, confidences,
matched patterns, and trajectories -- that the per-alert ``streaming``
engine (and through PR 3's equivalence suite, the seed ``naive``
re-decode path) emits, and leave every decoder's logical state (unary
tables, names, bonuses, window span) bitwise identical.  The window
*aggregates* are exempt from bitwise comparison: the kernel folds them
with log-depth tree scans, which reassociate floating point relative to
the sequential recursion -- by design, the aggregates only feed the
guard-banded ``may_fire`` pre-filter, and every firing decision is
re-derived from the exact cached decode (see
``sliding_window.SlidingProductWindow``'s module docstring).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import AttackTagger
from repro.core.alerts import Alert, AttackStage, DEFAULT_VOCABULARY
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed.sharding import ShardedDetectorPool

ALL_NAMES = [spec.name for spec in DEFAULT_VOCABULARY]
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]

#: Entities mixing ASCII, unicode, and separator-bearing names.
ENTITIES = ["host:α-web", "サーバ:db", "host:c", "10.0.0.7", "host:e"]


def _tagger(engine, max_window=8, **kwargs):
    return AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine=engine, **kwargs
    )


def _random_stream(rng, length, entities=ENTITIES, names=ALL_NAMES):
    return [
        Alert(
            float(i),
            names[rng.integers(len(names))],
            entities[rng.integers(len(entities))],
        )
        for i in range(length)
    ]


def _detection_key(detection):
    return (
        detection.entity,
        detection.alert_index,
        detection.timestamp,
        detection.state,
        detection.confidence,
        detection.matched_patterns,
        detection.state_trajectory,
    )


def _drive_batched(tagger, stream, chunk):
    hits = []
    for base in range(0, len(stream), chunk):
        sub = stream[base : base + chunk]
        for position, detection in tagger.observe_batch_indexed(sub):
            hits.append((base + position, _detection_key(detection)))
    return hits


def _drive_scalar(tagger, stream):
    hits = []
    for position, alert in enumerate(stream):
        detection = tagger.observe(alert)
        if detection is not None:
            hits.append((position, _detection_key(detection)))
    return hits


def _assert_same_logical_state(reference, batched, entities):
    """Decoder state equal where bit-identity is promised."""
    for entity in entities:
        track_r, track_b = reference.track(entity), batched.track(entity)
        assert (track_r is None) == (track_b is None)
        if track_r is None:
            continue
        assert [a.name for a in track_r.alerts] == [a.name for a in track_b.alerts]
        assert (track_r.detected is None) == (track_b.detected is None)
        if track_r.detected is not None:
            assert _detection_key(track_r.detected) == _detection_key(track_b.detected)
            continue
        states_r, marginal_r, matched_r = reference.infer(entity)
        states_b, marginal_b, matched_b = batched.infer(entity)
        assert np.array_equal(states_r, states_b)
        assert np.array_equal(marginal_r, marginal_b)
        assert matched_r == matched_b
        decoder_r = reference._decoder_for(track_r)
        decoder_b = batched._decoder_for(track_b)
        assert decoder_r._length == decoder_b._length
        assert decoder_r._start == decoder_b._start
        assert decoder_r._windowed == decoder_b._windowed
        n = decoder_r._length
        assert np.array_equal(decoder_r._base[:n], decoder_b._base[:n])
        assert np.array_equal(decoder_r._unary[:n], decoder_b._unary[:n])
        assert decoder_r._names[:n] == decoder_b._names[:n]


class TestBatchedEngineEquivalence:
    @pytest.mark.parametrize("max_window", [2, 3, 5, 8, 64])
    def test_bit_identical_detections_across_windows(self, max_window):
        rng = np.random.default_rng(max_window)
        stream = _random_stream(rng, 8 * max_window + 11)
        streaming = _tagger("streaming", max_window)
        batched = _tagger("batched", max_window)
        assert _drive_scalar(streaming, stream) == _drive_batched(batched, stream, 32)
        _assert_same_logical_state(streaming, batched, ENTITIES)

    @pytest.mark.parametrize("chunk", [1, 3, 17, 64])
    def test_sub_batch_shape_is_invisible(self, chunk):
        """Ragged chunking (duplicate entities per call) never shows."""
        rng = np.random.default_rng(chunk)
        stream = _random_stream(rng, 150, entities=ENTITIES[:3])
        streaming = _tagger("streaming")
        batched = _tagger("batched")
        assert _drive_scalar(streaming, stream) == _drive_batched(batched, stream, chunk)
        _assert_same_logical_state(streaming, batched, ENTITIES[:3])

    def test_matches_rebuild_and_naive_references(self):
        rng = np.random.default_rng(7)
        stream = _random_stream(rng, 90)
        expected = None
        for engine in ("naive", "rebuild", "streaming", "batched"):
            tagger = _tagger(engine)
            hits = (
                _drive_batched(tagger, stream, 16)
                if engine == "batched"
                else _drive_scalar(tagger, stream)
            )
            if expected is None:
                expected = hits
            else:
                assert hits == expected, engine
        assert expected  # the stream must actually fire detections

    def test_saturated_windows_heavy_eviction(self):
        """Long undetected streams keep every entity in eviction mode."""
        rng = np.random.default_rng(11)
        entities = [f"sat:{i}" for i in range(16)]
        stream = [
            Alert(float(i), BENIGN_NAMES[rng.integers(len(BENIGN_NAMES))], entities[i % 16])
            for i in range(3000)
        ]
        streaming = _tagger("streaming", max_window=16)
        batched = _tagger("batched", max_window=16)
        assert _drive_scalar(streaming, stream) == []
        assert _drive_batched(batched, stream, 64) == []
        _assert_same_logical_state(streaming, batched, entities)
        assert batched.kernel_seconds > 0.0
        assert streaming.kernel_seconds == 0.0

    def test_mid_stream_reset_entity(self):
        rng = np.random.default_rng(3)
        stream = _random_stream(rng, 240)
        streaming = _tagger("streaming")
        batched = _tagger("batched")
        hits_s, hits_b = [], []
        for base in range(0, len(stream), 30):
            sub = stream[base : base + 30]
            hits_s.extend((base + p, k) for p, k in enumerate_hits(streaming, sub))
            for position, detection in batched.observe_batch_indexed(sub):
                hits_b.append((base + position, _detection_key(detection)))
            if base == 90:
                streaming.reset_entity(ENTITIES[0])
                batched.reset_entity(ENTITIES[0])
        assert hits_s == hits_b
        _assert_same_logical_state(streaming, batched, ENTITIES)

    def test_checkpoint_restore_replay(self):
        """Pickle mid-stream, replay the rest: identical to unbroken run."""
        rng = np.random.default_rng(5)
        stream = _random_stream(rng, 200)
        unbroken = _tagger("batched")
        expected = _drive_batched(unbroken, stream, 25)
        restored = _tagger("batched")
        hits = _drive_batched(restored, stream[:100], 25)
        blob = pickle.dumps(restored)
        restored = pickle.loads(blob)
        assert restored._batch_kernel is None  # kernel is pure scratch
        for position, detection in restored.observe_batch_indexed(stream[100:]):
            hits.append((100 + position, _detection_key(detection)))
        assert hits == expected
        # And against the scalar engine, for good measure.
        streaming = _tagger("streaming")
        assert _drive_scalar(streaming, stream) == expected
        _assert_same_logical_state(streaming, restored, ENTITIES)

    def test_observe_returns_single_detections(self):
        """The per-alert entry point works under the batched engine too."""
        rng = np.random.default_rng(13)
        stream = _random_stream(rng, 80)
        streaming = _tagger("streaming")
        batched = _tagger("batched")
        for alert in stream:
            ds = streaming.observe(alert)
            db = batched.observe(alert)
            assert (ds is None) == (db is None)
            if ds is not None:
                assert _detection_key(ds) == _detection_key(db)
        assert [_detection_key(d) for d in streaming.detections] == [
            _detection_key(d) for d in batched.detections
        ]


def enumerate_hits(tagger, alerts):
    for position, alert in enumerate(alerts):
        detection = tagger.observe(alert)
        if detection is not None:
            yield position, _detection_key(detection)


class TestBatchedThroughSharding:
    @pytest.mark.parametrize("n_shards,backend", [(1, "serial"), (4, "serial"), (2, "process")])
    def test_pool_merges_identically(self, n_shards, backend):
        rng = np.random.default_rng(n_shards)
        stream = _random_stream(rng, 160)
        reference = _tagger("streaming")
        expected = [key for _, key in _drive_scalar(reference, stream)]
        pool = ShardedDetectorPool.from_template(
            _tagger("batched"), n_shards=n_shards, backend=backend
        )
        try:
            merged = []
            for base in range(0, len(stream), 40):
                merged.extend(pool.observe_batch(stream[base : base + 40]))
            assert [_detection_key(d) for d in merged] == expected
            if expected:
                assert sum(pool.kernel_seconds) > 0.0
        finally:
            pool.close()

    def test_pool_kernel_seconds_checkpoint_roundtrip(self):
        rng = np.random.default_rng(21)
        stream = _random_stream(rng, 120)
        pool = ShardedDetectorPool.from_template(_tagger("batched"), n_shards=2)
        pool.observe_batch(stream)
        assert sum(pool.kernel_seconds) > 0.0
        state = pool.snapshot_state()
        other = ShardedDetectorPool.from_template(_tagger("batched"), n_shards=2)
        other.restore_state(state)
        assert other.kernel_seconds == pool.kernel_seconds
        # Pre-kernel checkpoints restore with zeroed kernel telemetry.
        legacy = {key: value for key, value in state.items() if key != "kernel_seconds"}
        other.restore_state(legacy)
        assert other.kernel_seconds == [0.0, 0.0]
