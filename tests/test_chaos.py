"""Chaos suite: crash semantics under injected faults.

Two layers of coverage:

* the :mod:`repro.fuzz.chaos` oracle itself -- pinned seeded campaigns
  must pass every fault leg, and deliberately-broken fault plans must
  *fail* (the oracle is sensitive, not vacuous);
* direct supervised-recovery semantics on :class:`ShardedDetectorPool`
  -- a SIGKILLed worker under ``restart_policy="restore"`` heals with
  bit-identical detections and an audit trail in the recovery log,
  while a worker that dies deterministically on replay exhausts its
  restart budget and surfaces :class:`ShardRecoveryError`.
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.core import AttackTagger
from repro.core.alerts import Alert
from repro.incidents import DEFAULT_CATALOGUE
from repro.fuzz import SERVICE_FAULT_KINDS, ChaosComposer, ChaosOracle
from repro.testbed import (
    ShardRecoveryError,
    ShardWorkerError,
    ShardedDetectorPool,
    shard_of,
)

_PATTERNS = list(DEFAULT_CATALOGUE)


def _tagger_factory():
    """Module-level (picklable) factory for process shard workers."""
    return AttackTagger(patterns=list(DEFAULT_CATALOGUE))


class ExitingDetector:
    """Dies with ``os._exit`` on a chosen alert name: a hard crash that
    recurs on every replay, so supervised recovery can never succeed."""

    def __init__(self, poison_name: str = "alert_outbound_c2") -> None:
        self.poison_name = poison_name
        self.observed = 0

    @property
    def detections(self) -> list:
        return []

    def observe(self, alert):
        if alert.name == self.poison_name:
            os._exit(3)
        self.observed += 1
        return None

    def observe_batch(self, alerts):
        for alert in alerts:
            self.observe(alert)
        return []

    def reset(self) -> None:
        self.observed = 0

    def reset_entity(self, entity: str) -> None:
        pass

    def clone(self) -> "ExitingDetector":
        return ExitingDetector(self.poison_name)


def _exiting_factory():
    return ExitingDetector()


def _attack_stream(*, length: int = 96, entities: int = 8) -> list[Alert]:
    """Deterministic interleaved attack chains over several entities."""
    queues = {
        f"user:u{index:02d}": list(_PATTERNS[index % len(_PATTERNS)].names)
        for index in range(entities)
    }
    names = list(queues)
    stream: list[Alert] = []
    for step in range(length):
        entity = names[step % len(names)]
        queue = queues[entity]
        if not queue:
            queue.extend(_PATTERNS[(step // len(names)) % len(_PATTERNS)].names)
        stream.append(Alert(float(step), queue.pop(0), entity))
    return stream


class TestChaosOracleGate:
    """The pinned seeded campaigns the CI quick-chaos gate replays."""

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_pinned_campaign_passes_every_leg(self, index, tmp_path):
        composer = ChaosComposer(0, target_alerts=100)
        campaign, plans = composer.compose(index)
        verdict = ChaosOracle(workdir=tmp_path).run(campaign, plans)
        assert verdict.legs_run == len(plans) > 0
        assert verdict.ok, [str(f) for f in verdict.failures]

    @pytest.mark.parametrize("index", [0, 1])
    def test_pinned_service_campaign_passes_every_leg(self, index, tmp_path):
        """Socket-level fault legs: disconnect / reshard-kill / shed.

        The service analogue of the pinned pipeline campaigns above:
        each leg starts a real in-process server, streams the campaign
        over TCP while injecting its fault (a mid-batch client
        disconnect, a SIGKILL'd shard worker healed during a live
        N->M reshard, a forced shed-then-replay), and requires the
        ``results`` surface bit-identical to the offline reference.
        """
        composer = ChaosComposer(0, target_alerts=100)
        campaign, plans = composer.compose_service(index)
        assert plans, "service campaign must carry at least one fault leg"
        verdict = ChaosOracle(workdir=tmp_path).run(campaign, plans)
        assert verdict.legs_run == len(plans) > 0
        assert verdict.ok, [str(f) for f in verdict.failures]

    def test_service_campaigns_cover_every_fault_kind(self):
        """Across the pinned gate window, all three service legs occur."""
        composer = ChaosComposer(0, target_alerts=100)
        kinds = set()
        for _, _, plans in composer.service_campaigns(3):
            kinds.update(plan.kind for plan in plans)
        assert kinds >= set(SERVICE_FAULT_KINDS)

    def test_oracle_rejects_an_unobserved_kill(self, tmp_path):
        """Negative control: if the fault never fires, the leg must FAIL."""
        composer = ChaosComposer(0, target_alerts=100)
        campaign, plans = composer.compose(0)
        kill = next(plan for plan in plans if plan.kind == "kill")
        never_fires = dataclasses.replace(kill, kill_batch=10**6)
        verdict = ChaosOracle(workdir=tmp_path).run(campaign, [never_fires])
        assert not verdict.ok
        assert any("never surfaced" in str(f) for f in verdict.failures)

    def test_oracle_rejects_an_exhausted_heal(self, tmp_path):
        """Negative control: zero restart budget makes the heal leg fail."""
        composer = ChaosComposer(0, target_alerts=100)
        campaign, plans = composer.compose(0)
        heal = next(plan for plan in plans if plan.kind == "heal")
        no_budget = dataclasses.replace(heal, max_restarts=0)
        verdict = ChaosOracle(workdir=tmp_path).run(campaign, [no_budget])
        assert not verdict.ok


class TestSupervisedHealing:
    def test_sigkilled_worker_heals_bit_identically(self):
        stream = _attack_stream()
        routed = {shard_of(alert.entity, 2) for alert in stream}
        assert routed == {0, 1}, "stream must exercise both shards"

        reference_pool = ShardedDetectorPool(_tagger_factory, n_shards=2)
        supervised = ShardedDetectorPool(
            _tagger_factory,
            n_shards=2,
            backend="process",
            restart_policy="restore",
            backoff_base=0.001,
        )
        try:
            expected, healed = [], []
            batches = [stream[start : start + 24] for start in range(0, 96, 24)]
            for index, batch in enumerate(batches):
                expected.extend(reference_pool.observe_batch(batch))
                healed.extend(supervised.observe_batch(batch))
                if index == 1:
                    worker = supervised._workers[1]
                    worker.process.kill()
                    worker.process.join(5.0)
            assert healed == expected
            recoveries = supervised.recovery_log.for_shard(1)
            assert recoveries, "the SIGKILL restart must be audited"
            assert recoveries[-1].healed
            assert recoveries[-1].attempt >= 1
        finally:
            result = supervised.close()
        assert result.clean, result

    def test_restart_budget_exhaustion_raises_recovery_error(self):
        pool = ShardedDetectorPool(
            _exiting_factory,
            n_shards=1,
            backend="process",
            restart_policy="restore",
            max_restarts=2,
            backoff_base=0.001,
        )
        try:
            benign = [Alert(float(i), "alert_port_scan", "host:h0") for i in range(6)]
            pool.observe_batch(benign)
            poison = benign + [Alert(9.0, "alert_outbound_c2", "host:h0")]
            with pytest.raises(ShardRecoveryError) as excinfo:
                pool.observe_batch(poison)
            error = excinfo.value
            assert error.shard == 0
            assert error.attempts == 2
            assert "died without replying" in error.worker_traceback
            attempts = pool.recovery_log.for_shard(0)
            assert len(attempts) == 2
            assert not any(event.healed for event in attempts)
        finally:
            pool.close()

    def test_recovery_error_is_still_a_shard_worker_error(self):
        error = ShardRecoveryError(3, "detail text", 2)
        assert isinstance(error, ShardWorkerError)
        assert isinstance(error, RuntimeError)
        assert "unrecovered after 2" in str(error)
