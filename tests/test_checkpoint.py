"""Checkpoint/restore suite: crash-safe pipeline persistence.

The pipeline's crash-safety contract has three layers, each pinned
here:

* the *file* layer (``write_checkpoint`` / ``read_checkpoint``) frames
  payloads as ``magic || version || pickle`` and writes atomically, so
  bad magic, foreign versions, and torn bodies fail loudly;
* the *store* layer (``CheckpointStore``) numbers checkpoints
  monotonically and prunes retention only after the new file is
  durable;
* the *pipeline* layer (``TestbedPipeline.checkpoint`` / ``restore``)
  gives bit-identical continuation: a restored pipeline produces
  exactly the detections and counters the uninterrupted run would
  have, and re-checkpointing a restored pipeline reproduces the
  original checkpoint byte for byte (the property Hypothesis fuzzes
  below with unicode entities and saturated decode windows).
"""

from __future__ import annotations

import struct
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AttackTagger
from repro.core.alerts import Alert
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointStore,
    TestbedPipeline,
    read_checkpoint,
    write_checkpoint,
)

#: Alert names the default catalogue's first pattern fires on, plus a
#: benign-ish name -- enough vocabulary to drive real decoder state.
_PATTERNS = list(DEFAULT_CATALOGUE)
_ATTACK_NAMES = list(_PATTERNS[0].names)
_ALL_NAMES = sorted({name for pattern in _PATTERNS for name in pattern.names})


def _build_pipeline(
    *, n_shards: int = 1, backend: str = "serial", max_window: int = 64
) -> TestbedPipeline:
    tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE), max_window=max_window)
    return TestbedPipeline(
        detectors={"factor_graph": tagger},
        n_shards=n_shards,
        shard_backend=backend,
    )


def _mixed_stream(*, seed: int = 7, n_entities: int = 12, length: int = 240) -> list[Alert]:
    """Interleaved attack chains across entities, strictly increasing time."""
    rng = np.random.default_rng(seed)
    queues = {
        f"user:u{index:02d}": list(_PATTERNS[index % len(_PATTERNS)].names)
        for index in range(n_entities)
    }
    entities = list(queues)
    stream: list[Alert] = []
    timestamp = 0.0
    while len(stream) < length:
        entity = entities[int(rng.integers(0, len(entities)))]
        queue = queues[entity]
        if not queue:
            queue.extend(_PATTERNS[int(rng.integers(0, len(_PATTERNS)))].names)
        timestamp += float(rng.uniform(0.1, 2.0))
        stream.append(Alert(timestamp, queue.pop(0), entity))
    return stream


def _counters(pipeline: TestbedPipeline) -> dict:
    summary = pipeline.summary()
    return {
        key: summary[key]
        for key in (
            "raw_records",
            "normalized_alerts",
            "filtered_alerts",
            "detections",
            "responses",
            "notifications",
            "blocked_sources",
        )
    }


class TestCheckpointFile:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "one.ckpt"
        payload = {"alpha": [1, 2.5, "x"], "beta": ("user:α", b"blob")}
        size = write_checkpoint(path, payload)
        assert path.stat().st_size == size
        assert read_checkpoint(path) == payload

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "absent.ckpt")

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 16)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path)

    def test_foreign_version_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(
            CHECKPOINT_MAGIC + struct.pack("<I", CHECKPOINT_VERSION + 1) + b"x"
        )
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_truncated_body_rejected(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        write_checkpoint(path, {"key": list(range(100))})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt|truncated"):
            read_checkpoint(path)

    def test_unpicklable_payload_fails_without_leaving_files(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        with pytest.raises(CheckpointError, match="not picklable"):
            write_checkpoint(path, {"fn": lambda: None})
        assert list(tmp_path.iterdir()) == [], "no target and no temp litter"

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "same.ckpt"
        write_checkpoint(path, {"generation": 1})
        write_checkpoint(path, {"generation": 2})
        assert read_checkpoint(path) == {"generation": 2}
        assert list(tmp_path.iterdir()) == [path]


class TestCheckpointStore:
    def test_rejects_bad_retention(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointStore(tmp_path, keep_last=0)

    def test_empty_store_has_no_latest_and_cannot_load(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        assert store.sequences() == []
        assert store.latest() is None
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load_latest(_build_pipeline())

    def test_save_numbers_monotonically_and_prunes(self, tmp_path):
        store = CheckpointStore(tmp_path, keep_last=2)
        stream = _mixed_stream(length=90)
        with _build_pipeline() as pipeline:
            for start in range(0, 90, 30):
                pipeline.ingest_alerts(stream[start : start + 30])
                store.save(pipeline)
        assert store.sequences() == [2, 3], "oldest pruned after the save"
        assert store.latest() == store.path_for(3)

    def test_load_latest_continues_bit_identically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        stream = _mixed_stream(length=180)
        with _build_pipeline() as reference:
            reference.ingest_alerts(stream[:90])
            store.save(reference)
            tail = reference.ingest_alerts(stream[90:])
        with _build_pipeline() as restored:
            store.load_latest(restored)
            assert restored.ingest_alerts(stream[90:]) == tail


@pytest.mark.parametrize(
    "n_shards,backend",
    [(1, "serial"), (4, "serial"), (2, "process")],
    ids=["serial-1", "serial-4", "process-2"],
)
class TestPipelineCheckpointRestore:
    def test_restore_continues_bit_identically(self, tmp_path, n_shards, backend):
        stream = _mixed_stream(length=240)
        path = tmp_path / "mid.ckpt"
        with _build_pipeline(n_shards=n_shards, backend=backend) as reference:
            reference.ingest_alerts(stream[:120])
            reference.checkpoint(path)
            log_at_checkpoint = list(reference.detections)
            tail = reference.ingest_alerts(stream[120:])
            expected_counters = _counters(reference)
            expected_log = list(reference.detections)
        with _build_pipeline(n_shards=n_shards, backend=backend) as restored:
            restored.restore(path)
            assert list(restored.detections) == log_at_checkpoint
            assert restored.ingest_alerts(stream[120:]) == tail
            assert _counters(restored) == expected_counters
            assert list(restored.detections) == expected_log

    def test_recheckpoint_is_byte_identical(self, tmp_path, n_shards, backend):
        stream = _mixed_stream(length=160)
        original = tmp_path / "orig.ckpt"
        again = tmp_path / "again.ckpt"
        with _build_pipeline(n_shards=n_shards, backend=backend) as reference:
            reference.ingest_alerts(stream)
            reference.checkpoint(original)
        with _build_pipeline(n_shards=n_shards, backend=backend) as restored:
            restored.restore(original)
            restored.checkpoint(again)
        assert original.read_bytes() == again.read_bytes()


class TestRestoreMisuse:
    """Misuse must raise clearly *before* any state is mutated."""

    def _checkpoint_of(self, tmp_path, **kwargs) -> Path:
        path = tmp_path / "seed.ckpt"
        stream = _mixed_stream(length=120)
        with _build_pipeline(**kwargs) as pipeline:
            pipeline.ingest_alerts(stream)
            pipeline.checkpoint(path)
        return path

    def test_restore_into_driven_pipeline_raises(self, tmp_path):
        path = self._checkpoint_of(tmp_path)
        with _build_pipeline() as driven:
            driven.ingest_alerts(_mixed_stream(seed=11, length=30))
            before = list(driven.detections)
            with pytest.raises(RuntimeError, match="freshly constructed"):
                driven.restore(path)
            assert list(driven.detections) == before, "failed restore mutated state"

    def test_double_restore_raises(self, tmp_path):
        path = self._checkpoint_of(tmp_path)
        with _build_pipeline() as pipeline:
            pipeline.restore(path)
            after_first = list(pipeline.detections)
            with pytest.raises(RuntimeError, match="already restored"):
                pipeline.restore(path)
            assert list(pipeline.detections) == after_first

    def test_shard_count_mismatch_raises(self, tmp_path):
        path = self._checkpoint_of(tmp_path, n_shards=2)
        with _build_pipeline(n_shards=4) as pipeline:
            with pytest.raises(CheckpointError, match="n_shards"):
                pipeline.restore(path)
            assert list(pipeline.detections) == []

    def test_backend_mismatch_raises(self, tmp_path):
        path = self._checkpoint_of(tmp_path, n_shards=2, backend="serial")
        with _build_pipeline(n_shards=2, backend="process") as pipeline:
            with pytest.raises(CheckpointError, match="backend"):
                pipeline.restore(path)


@st.composite
def _hypothesis_stream(draw) -> list[Alert]:
    """Short adversarial streams: unicode entities, bursty repeats.

    Entities are drawn from a pool that mixes plain ASCII with
    non-Latin scripts and astral-plane codepoints; per-entity volumes
    are skewed so some entities saturate a small decode window.
    """
    entity_pool = draw(
        st.lists(
            st.text(
                alphabet=st.characters(
                    codec="utf-8", blacklist_categories=("Cs",), min_codepoint=33
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_ALL_NAMES),
                st.sampled_from(entity_pool),
                st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    stream, timestamp = [], 0.0
    for name, entity, delta in events:
        timestamp += delta
        stream.append(Alert(timestamp, name, entity))
    return stream


class TestCheckpointDeterminismProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(stream=_hypothesis_stream())
    def test_checkpoint_restore_checkpoint_is_byte_identical(self, stream):
        # max_window=4 forces window saturation/eviction on bursty
        # entities, the decoder state hardest to serialise canonically.
        with tempfile.TemporaryDirectory() as workdir:
            original = Path(workdir) / "orig.ckpt"
            again = Path(workdir) / "again.ckpt"
            with _build_pipeline(max_window=4) as reference:
                reference.ingest_alerts(stream)
                reference.checkpoint(original)
            with _build_pipeline(max_window=4) as restored:
                restored.restore(original)
                restored.checkpoint(again)
            assert original.read_bytes() == again.read_bytes()
