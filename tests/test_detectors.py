"""Tests for the detectors: AttackTagger, rule-based, and the baselines."""

from __future__ import annotations

import pytest

from repro.core import (
    AttackTagger,
    CriticalAlertDetector,
    DEFAULT_VOCABULARY,
    HiddenState,
    NaiveBayesDetector,
    RuleBasedDetector,
    default_parameters,
    label_sequence_from_stages,
)
from repro.core.alerts import Alert
from repro.core.rule_based import Rule, RuleKind
from repro.core.sequences import AlertSequence
from repro.incidents import DEFAULT_CATALOGUE

ATTACK_NAMES = [
    "alert_login_stolen_credential",
    "alert_download_sensitive",
    "alert_compile_kernel_module",
    "alert_privilege_escalation",
    "alert_erase_forensic_trace",
]
BENIGN_NAMES = ["alert_login_normal", "alert_job_submission", "alert_cron_job", "alert_file_transfer"]


def _sequence(names, entity="user:test"):
    return AlertSequence.from_names(names, entity=entity)


class TestAttackTagger:
    def test_detects_rootkit_chain(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        detection = tagger.run_sequence(_sequence(ATTACK_NAMES))
        assert detection is not None
        assert detection.is_malicious
        assert detection.confidence >= 0.5

    def test_does_not_flag_benign_activity(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        assert tagger.run_sequence(_sequence(BENIGN_NAMES)) is None

    def test_detection_before_damage(self):
        """Preemption: the chain is flagged before the erase-trace step."""
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        detection = tagger.run_sequence(_sequence(ATTACK_NAMES))
        assert detection is not None
        assert detection.alert_index < len(ATTACK_NAMES) - 1

    def test_one_detection_per_entity(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        alerts = list(_sequence(ATTACK_NAMES + ATTACK_NAMES, entity="user:dup"))
        detections = tagger.observe_many(alerts)
        assert len(detections) == 1

    def test_entities_tracked_separately(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        tagger.observe(Alert(0.0, "alert_download_sensitive", "user:a"))
        tagger.observe(Alert(1.0, "alert_login_normal", "user:b"))
        assert set(tagger.entities()) == {"user:a", "user:b"}
        assert tagger.current_state("user:b") is HiddenState.BENIGN

    def test_posterior_sums_to_one(self):
        tagger = AttackTagger()
        tagger.observe(Alert(0.0, "alert_download_sensitive", "user:a"))
        posterior = tagger.posterior("user:a")
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_window_truncation(self):
        tagger = AttackTagger(max_window=4)
        for i in range(10):
            tagger.observe(Alert(float(i), "alert_login_normal", "user:a"))
        assert len(tagger.track("user:a").alerts) == 4

    def test_trained_parameters_improve_or_match_prior(self, trained_parameters):
        prior = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        trained = AttackTagger(trained_parameters, patterns=list(DEFAULT_CATALOGUE))
        sequence = _sequence(ATTACK_NAMES)
        prior_detection = prior.run_sequence(sequence)
        trained_detection = trained.run_sequence(sequence)
        assert trained_detection is not None
        if prior_detection is not None:
            assert trained_detection.alert_index <= prior_detection.alert_index + 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            AttackTagger(detection_threshold=1.5)

    def test_reset_entity_clears_state(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        tagger.run_sequence(_sequence(ATTACK_NAMES), entity="user:x")
        tagger.reset_entity("user:x")
        assert "user:x" not in tagger.entities()

    def test_ablation_without_patterns_still_catches_critical_chain(self):
        parameters = default_parameters().without_patterns()
        tagger = AttackTagger(parameters, patterns=[])
        detection = tagger.run_sequence(_sequence(ATTACK_NAMES))
        assert detection is not None


class TestRuleBasedDetector:
    def test_fires_on_critical_alert(self):
        detector = RuleBasedDetector()
        detection = detector.run_sequence(_sequence(["alert_privilege_escalation"]))
        assert detection is not None
        assert "rule_critical_alert" in detection.matched_patterns

    def test_signature_rule_requires_order(self):
        detector = RuleBasedDetector()
        names = ["alert_erase_forensic_trace", "alert_compile_kernel_module",
                 "alert_download_sensitive"]
        detection = detector.run_sequence(_sequence(names), entity="user:rev")
        # Reverse order: the download/compile/erase signature must NOT fire.
        assert detection is None or "rule_download_compile_erase" not in detection.matched_patterns

    def test_threshold_rule_with_window(self):
        rule = Rule(
            name="r",
            kind=RuleKind.THRESHOLD,
            alert_names=("alert_bruteforce_ssh",),
            threshold=3,
            window_seconds=100.0,
        )
        detector = RuleBasedDetector(rules=[rule])
        # Three brute-force alerts within 100 seconds -> fires.
        seq = AlertSequence.from_names(["alert_bruteforce_ssh"] * 3, step=10.0)
        assert detector.run_sequence(seq, entity="user:bf") is not None
        # Spread over 10 hours -> does not fire.
        detector2 = RuleBasedDetector(rules=[rule])
        seq_slow = AlertSequence.from_names(["alert_bruteforce_ssh"] * 3, step=18000.0)
        assert detector2.run_sequence(seq_slow, entity="user:slow") is None

    def test_benign_traffic_not_flagged(self):
        detector = RuleBasedDetector()
        assert detector.run_sequence(_sequence(BENIGN_NAMES)) is None

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            Rule(name="bad", kind=RuleKind.SINGLE_ALERT, alert_names=())
        with pytest.raises(ValueError):
            Rule(name="bad", kind=RuleKind.THRESHOLD, alert_names=("a",), threshold=0)

    def test_ignore_rules(self):
        detector = RuleBasedDetector(ignore_rules=["rule_critical_alert"])
        assert all(r.name != "rule_critical_alert" for r in detector.rules)


class TestCriticalAlertDetector:
    def test_fires_only_on_critical(self):
        detector = CriticalAlertDetector()
        assert detector.run_sequence(_sequence(BENIGN_NAMES)) is None
        detection = detector.run_sequence(
            _sequence(["alert_login_normal", "alert_pii_in_http"]), entity="user:c"
        )
        assert detection is not None
        assert detection.trigger.name == "alert_pii_in_http"

    def test_cannot_preempt(self):
        """By construction the critical-only detector fires at/after damage."""
        from repro.core import evaluate_preemption

        detector = CriticalAlertDetector()
        sequence = _sequence(ATTACK_NAMES)
        detection = detector.run_sequence(sequence, entity="user:late")
        result = evaluate_preemption(sequence, detection)
        assert result.detected
        assert not result.preempted


class TestNaiveBayesDetector:
    def _training_examples(self):
        attack = label_sequence_from_stages(_sequence(ATTACK_NAMES), is_attack=True)
        benign = label_sequence_from_stages(_sequence(BENIGN_NAMES), is_attack=False)
        return [attack, benign]

    def test_requires_fit_before_observe(self):
        detector = NaiveBayesDetector()
        with pytest.raises(RuntimeError):
            detector.observe(Alert(0.0, "alert_login_normal", "user:a"))

    def test_detects_attack_after_fit(self):
        detector = NaiveBayesDetector(detection_log_odds=1.0)
        detector.fit(self._training_examples())
        assert detector.run_sequence(_sequence(ATTACK_NAMES)) is not None

    def test_benign_not_flagged(self):
        detector = NaiveBayesDetector(detection_log_odds=3.0)
        detector.fit(self._training_examples())
        assert detector.run_sequence(_sequence(BENIGN_NAMES)) is None
