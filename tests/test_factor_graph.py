"""Tests for the factor-graph machinery: BP vs. brute force, chain decoders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.factor_graph import (
    Factor,
    FactorGraph,
    Variable,
    _logsumexp,
    chain_map_decode,
    chain_marginals,
    logsumexp_matmul,
    logsumexp_matmul_batch,
    logsumexp_vecmat,
    logsumexp_vecmat_batch,
    maxplus_matmul,
    maxplus_matmul_batch,
    maxplus_vecmat,
    maxplus_vecmat_batch,
)


def _chain_graph(unary: np.ndarray, pairwise: np.ndarray) -> FactorGraph:
    """Build an explicit FactorGraph for a chain model."""
    steps, states = unary.shape
    graph = FactorGraph()
    variables = [graph.add_variable(Variable(f"s{t}", states)) for t in range(steps)]
    for t in range(steps):
        graph.add_factor(Factor(f"obs{t}", [variables[t]], np.exp(unary[t])))
        if t > 0:
            graph.add_factor(
                Factor(f"trans{t}", [variables[t - 1], variables[t]], np.exp(pairwise))
            )
    return graph


class TestFactorValidation:
    def test_shape_mismatch_rejected(self):
        v = Variable("x", 2)
        with pytest.raises(ValueError):
            Factor("f", [v], np.ones((3,)))

    def test_negative_potentials_rejected(self):
        v = Variable("x", 2)
        with pytest.raises(ValueError):
            Factor("f", [v], np.array([1.0, -0.5]))

    def test_all_zero_rejected(self):
        v = Variable("x", 2)
        with pytest.raises(ValueError):
            Factor("f", [v], np.zeros(2))

    def test_variable_cardinality_positive(self):
        with pytest.raises(ValueError):
            Variable("x", 0)

    def test_unknown_variable_in_factor(self):
        graph = FactorGraph()
        v = Variable("x", 2)
        with pytest.raises(KeyError):
            graph.add_factor(Factor("f", [v], np.ones(2)))


class TestInferenceAgainstBruteForce:
    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_chain_marginals_match_enumeration(self, length, seed):
        rng = np.random.default_rng(seed)
        unary = rng.normal(size=(length, 3))
        pairwise = rng.normal(size=(3, 3))
        graph = _chain_graph(unary, pairwise)
        bp = graph.marginals(max_iterations=100)
        exact = graph.brute_force_marginals()
        for name in exact:
            assert np.allclose(bp[name], exact[name], atol=1e-5)

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_map_matches_enumeration_score(self, length, seed):
        rng = np.random.default_rng(seed)
        unary = rng.normal(size=(length, 3))
        pairwise = rng.normal(size=(3, 3))
        graph = _chain_graph(unary, pairwise)
        bp_map = graph.map_assignment(max_iterations=100)
        exact_map = graph.brute_force_map()
        # Max-product may return a different argmax when there are ties;
        # compare the achieved score instead of the assignment itself.
        assert graph.log_score(bp_map) == pytest.approx(graph.log_score(exact_map), abs=1e-5)

    def test_is_chain_detects_structure(self):
        unary = np.zeros((3, 2))
        pairwise = np.zeros((2, 2))
        graph = _chain_graph(unary, pairwise)
        assert graph.is_chain()


class TestChainSpecializations:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_viterbi_matches_graph_map_score(self, length, seed):
        rng = np.random.default_rng(seed)
        unary = rng.normal(size=(length, 3))
        pairwise = rng.normal(size=(3, 3))
        path = chain_map_decode(unary, pairwise)
        assert path.shape == (length,)
        graph = _chain_graph(unary, pairwise)
        assignment = {f"s{t}": int(path[t]) for t in range(length)}
        best = graph.brute_force_map() if length <= 4 else None
        if best is not None:
            assert graph.log_score(assignment) == pytest.approx(graph.log_score(best), abs=1e-6)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_chain_marginals_are_distributions(self, length, seed):
        rng = np.random.default_rng(seed)
        unary = rng.normal(size=(length, 3))
        pairwise = rng.normal(size=(3, 3))
        marginals = chain_marginals(unary, pairwise)
        assert marginals.shape == (length, 3)
        assert np.allclose(marginals.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(marginals >= 0)

    def test_chain_marginals_match_factor_graph(self):
        rng = np.random.default_rng(3)
        unary = rng.normal(size=(4, 3))
        pairwise = rng.normal(size=(3, 3))
        fast = chain_marginals(unary, pairwise)
        graph = _chain_graph(unary, pairwise)
        exact = graph.brute_force_marginals()
        for t in range(4):
            assert np.allclose(fast[t], exact[f"s{t}"], atol=1e-6)

    def test_empty_chain(self):
        assert chain_map_decode(np.zeros((0, 3)), np.zeros((3, 3))).size == 0
        assert chain_marginals(np.zeros((0, 3)), np.zeros((3, 3))).shape == (0, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            chain_map_decode(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            chain_map_decode(np.zeros(3), np.zeros((3, 3)))


class TestAxisAwareLogsumexp:
    """The stacked kernels depend on ``_logsumexp`` over axes replaying
    the scalar reduction bit-for-bit and staying -inf-safe."""

    def test_axis_rows_match_scalar_calls(self):
        rng = np.random.default_rng(0)
        stacked = rng.normal(size=(9, 3)) * 50.0
        stacked[2, :] = -np.inf  # fully impossible row
        stacked[5, 1] = -np.inf
        rows = _logsumexp(stacked, axis=1)
        for i in range(stacked.shape[0]):
            scalar = _logsumexp(stacked[i])
            assert rows[i] == scalar or (np.isinf(rows[i]) and np.isinf(scalar))

    def test_keepdims_shape_and_values(self):
        rng = np.random.default_rng(1)
        stacked = rng.normal(size=(4, 3))
        kept = _logsumexp(stacked, axis=1, keepdims=True)
        assert kept.shape == (4, 1)
        assert np.array_equal(kept[:, 0], _logsumexp(stacked, axis=1))

    def test_middle_axis_of_three(self):
        rng = np.random.default_rng(2)
        stacked = rng.normal(size=(5, 3, 3))
        reduced = _logsumexp(stacked, axis=1)
        for n in range(5):
            for b in range(3):
                assert reduced[n, b] == _logsumexp(stacked[n, :, b])

    def test_all_minus_inf_input(self):
        stacked = np.full((2, 3), -np.inf)
        reduced = _logsumexp(stacked, axis=1)
        assert np.all(np.isneginf(reduced))
        assert _logsumexp(stacked) == -np.inf

    def test_default_axis_unchanged(self):
        values = np.array([0.0, 700.0, -700.0])
        assert _logsumexp(values) == pytest.approx(700.0)
        assert np.isscalar(_logsumexp(values)) or _logsumexp(values).ndim == 0


class TestBatchedSemiringOps:
    """Stacked (N, K, K) ops must equal per-slice scalar ops bitwise."""

    def _stacks(self, seed, n=7, k=3):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, k, k)) * 30.0
        b = rng.normal(size=(n, k, k)) * 30.0
        a[1, :, 0] = -np.inf  # impossible transitions survive stacking
        b[3, 2, :] = -np.inf
        return a, b

    def test_maxplus_matmul_batch_matches_scalar(self):
        a, b = self._stacks(0)
        out = maxplus_matmul_batch(a, b)
        for n in range(a.shape[0]):
            assert np.array_equal(out[n], maxplus_matmul(a[n], b[n]))

    def test_logsumexp_matmul_batch_matches_scalar(self):
        a, b = self._stacks(1)
        out = logsumexp_matmul_batch(a, b)
        for n in range(a.shape[0]):
            scalar = logsumexp_matmul(a[n], b[n])
            assert np.array_equal(out[n], scalar, equal_nan=True)

    def test_vecmat_batch_ops_match_scalar(self):
        rng = np.random.default_rng(2)
        v = rng.normal(size=(6, 3)) * 30.0
        m = rng.normal(size=(6, 3, 3)) * 30.0
        v[4, 1] = -np.inf
        out_max = maxplus_vecmat_batch(v, m)
        out_lse = logsumexp_vecmat_batch(v, m)
        for n in range(6):
            assert np.array_equal(out_max[n], maxplus_vecmat(v[n], m[n]))
            assert np.array_equal(out_lse[n], logsumexp_vecmat(v[n], m[n]), equal_nan=True)

    def test_scratch_out_buffers_do_not_change_results(self):
        a, b = self._stacks(3)
        n, k = a.shape[0], a.shape[1]
        stacked = np.empty((n, k, k, k))
        out = np.empty((n, k, k))
        plain = logsumexp_matmul_batch(a, b)
        buffered = logsumexp_matmul_batch(a, b, stacked_out=stacked, out=out)
        assert buffered is out
        assert np.array_equal(plain, buffered, equal_nan=True)
