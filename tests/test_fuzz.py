"""Tests for the campaign fuzzer and the differential oracle.

The exhaustive seed sweep lives in CI's quick-fuzz gate
(``python -m repro.fuzz``); this suite pins the machinery itself:
composer determinism and coverage, campaign (de)serialisation, the
raw-record inverse mapping, oracle equivalence on a pinned seed subset,
divergence *detection* (a seeded fault must be flagged, not masked),
and the shrinker's reduction guarantees.
"""

from __future__ import annotations

import dataclasses
import os
import zlib

import pytest

from repro.core.alerts import Alert
from repro.fuzz import (
    Campaign,
    CampaignComposer,
    CampaignEvent,
    DifferentialOracle,
    OracleConfig,
    RAW_CAPABLE_NAMES,
    alerts_to_zeek_records,
    full_matrix,
    quick_matrix,
    shrink_campaign,
)
from repro.telemetry.normalizer import AlertNormalizer

#: Extra shard count injected by the CI matrix (REPRO_SHARDS={1,4}).
EXTRA_SHARDS = int(os.environ.get("REPRO_SHARDS", "1"))


class TestCampaignComposer:
    def test_same_seed_same_campaign_bit_for_bit(self):
        a = CampaignComposer(7, target_alerts=150).compose(3)
        b = CampaignComposer(7, target_alerts=150).compose(3)
        assert a.to_dict() == b.to_dict()

    def test_different_indices_differ(self):
        composer = CampaignComposer(7, target_alerts=150)
        assert composer.compose(0).to_dict() != composer.compose(1).to_dict()

    def test_adversarial_coverage(self):
        """Across a few seeds the composer hits every advertised shape."""
        composer = CampaignComposer(0, target_alerts=300)
        campaigns = [composer.compose(i) for i in range(8)]
        kinds = {e.kind for c in campaigns for e in c.events}
        assert kinds == {"batch", "reset_entity", "reset", "reopen"}
        alerts = [a for c in campaigns for a in c.alerts()]
        timestamps_by_campaign = [
            [a.timestamp for a in c.alerts()] for c in campaigns
        ]
        assert any(  # out-of-order alerts
            any(b < a for a, b in zip(ts, ts[1:])) for ts in timestamps_by_campaign
        )
        assert any(  # duplicate timestamps
            len(set(ts)) < len(ts) for ts in timestamps_by_campaign
        )
        assert any(not a.entity.isascii() for a in alerts), "unicode entities"
        # Window-saturating bursts: some entity emits more alerts than
        # the campaign's max_window.
        assert any(
            max(
                sum(1 for a in c.alerts() if a.entity == e)
                for e in c.entities()
            )
            > c.max_window
            for c in campaigns
        )

    def test_hash_adjacent_entities_share_a_shard(self):
        campaign = CampaignComposer(1).compose(0)
        colliders = [e for e in campaign.entities() if "collide-" in e]
        assert len(colliders) >= 2
        shards = {zlib.crc32(e.encode("utf-8")) % 4 for e in colliders}
        assert len(shards) == 1

    def test_json_round_trip_preserves_everything(self, tmp_path):
        campaign = CampaignComposer(5, target_alerts=120).compose(2)
        path = campaign.save(tmp_path / "campaign.json")
        loaded = Campaign.load(path)
        assert loaded.to_dict() == campaign.to_dict()
        # Attribute payloads survive even though Alert.__eq__ skips them.
        for a, b in zip(campaign.alerts(), loaded.alerts()):
            assert dict(b.attributes) == dict(a.attributes)

    def test_raw_capable_campaigns_are_zeek_expressible(self):
        campaign = CampaignComposer(3).compose(2, raw_capable=True)
        alerts = campaign.alerts()
        assert alerts
        assert all(a.name in RAW_CAPABLE_NAMES for a in alerts)
        assert all(a.entity.startswith("host:") for a in alerts)
        records = alerts_to_zeek_records(alerts)
        rebuilt = AlertNormalizer().normalize_stream(records)
        # The inverse mapping is exact: nothing dropped, every field
        # that participates in Alert equality reconstructed.
        assert rebuilt == alerts


class TestDifferentialOracle:
    #: Pinned seeds replayed in tier-1 (the broad sweep runs in CI's
    #: quick-fuzz gate; these keep the property exercised locally).
    PINNED_SEEDS = (0, 1)

    @pytest.mark.parametrize("seed", PINNED_SEEDS)
    def test_pinned_campaigns_replay_identically(self, seed):
        composer = CampaignComposer(seed, target_alerts=150)
        configs = quick_matrix() + [
            OracleConfig("streaming", EXTRA_SHARDS, "serial", "alert_stream")
        ]
        oracle = DifferentialOracle(configs)
        verdict = oracle.run(composer.compose(0, raw_capable=seed % 2 == 1))
        assert verdict.ok, "\n".join(str(d) for d in verdict.divergences)
        assert verdict.configs_run >= 5
        assert verdict.reference is not None
        assert verdict.reference.counters["filtered_alerts"] > 0

    def test_matrix_shapes(self):
        # 72 pickle configs + the shm variant of every process config.
        matrix = full_matrix()
        assert len(matrix) == 108
        labels = {config.label for config in matrix}
        assert len(labels) == 108
        assert OracleConfig.parse("naive:4:process:raw_stream") in matrix
        assert OracleConfig.parse("naive:4:process:raw_stream:shm") in matrix
        assert sum(1 for c in matrix if c.transport == "shm") == 36
        assert all(c.backend == "process" for c in matrix if c.transport == "shm")

    def test_oracle_flags_a_seeded_fault(self):
        """A detector-visible fault must surface as a divergence.

        Replays the same campaign with a *different* detection
        threshold masquerading as one configuration -- the equivalent
        of an engine bug -- and asserts the oracle reports it rather
        than averaging it away.
        """
        campaign = CampaignComposer(2, target_alerts=150).compose(1)
        oracle = DifferentialOracle([OracleConfig("streaming", 2, "serial", "sync")])
        verdict = oracle.run(campaign)
        assert verdict.ok

        broken = dataclasses.replace(
            campaign, detection_threshold=0.999, label="seeded-fault"
        )

        class LyingOracle(DifferentialOracle):
            def replay(self, c, config):
                # The reference sees the real campaign; the test config
                # sees the broken clone (a simulated engine fault).
                if config == self.reference:
                    return super().replay(campaign, config)
                return super().replay(broken, config)

        lying = LyingOracle([OracleConfig("streaming", 2, "serial", "sync")])
        verdict = lying.run(campaign)
        assert not verdict.ok
        fields = {d.field for d in verdict.divergences}
        assert "detections" in fields or "counter:detections" in fields

    def test_attribute_corruption_is_flagged(self):
        """Alert equality skips ``attributes``; the oracle must not.

        A columnar wire-format bug that corrupted trigger metadata
        would be invisible to ``==`` on Detection/Alert -- the compare
        step checks the attribute dicts explicitly (raw-driver configs
        excepted: their attributes come from the normaliser).
        """
        campaign = CampaignComposer(2, target_alerts=150).compose(1)
        config = OracleConfig("streaming", 2, "serial", "sync")
        oracle = DifferentialOracle([config])
        reference = oracle.replay(campaign, oracle.reference)
        assert reference.detections, "need at least one detection"
        corrupted = oracle.replay(campaign, config)
        corrupted.detections[0] = dataclasses.replace(
            corrupted.detections[0],
            trigger=dataclasses.replace(
                corrupted.detections[0].trigger,
                attributes={"corrupted": True},
            ),
        )
        divergences = DifferentialOracle._compare(reference, corrupted)
        assert any(
            "attributes" in d.detail for d in divergences
        ), "attribute corruption must surface as a divergence"
        raw_config = OracleConfig("streaming", 2, "serial", "raw_stream")
        corrupted.config = raw_config
        assert DifferentialOracle._compare(reference, corrupted) == []

    def test_controls_replay_through_every_driver(self):
        """A campaign that is nothing but controls must still replay."""
        base = CampaignComposer(4, target_alerts=60).compose(0)
        batch = next(e for e in base.events if e.kind == "batch" and e.alerts)
        campaign = dataclasses.replace(
            base,
            events=(
                CampaignEvent(kind="reset"),
                batch,
                CampaignEvent(kind="reset_entity", entity=batch.alerts[0].entity),
                CampaignEvent(kind="reopen"),
                batch,
                CampaignEvent(kind="reopen"),
            ),
            label="controls",
        )
        oracle = DifferentialOracle(
            [
                OracleConfig("streaming", 2, "serial", "alert_stream"),
                OracleConfig("streaming", 2, "process", "alert_stream"),
                OracleConfig("naive", 4, "process", "sync"),
            ]
        )
        verdict = oracle.run(campaign)
        assert verdict.ok, "\n".join(str(d) for d in verdict.divergences)


class TestShrinker:
    def _campaign(self, events):
        return Campaign(seed=0, events=tuple(events), label="shrink-input")

    def _batch(self, *names, entity="user:x"):
        return CampaignEvent(
            kind="batch",
            alerts=tuple(
                Alert(float(i), name, entity) for i, name in enumerate(names)
            ),
        )

    def test_shrinks_to_the_failure_carrier(self):
        poison = "alert_outbound_c2"
        events = [
            self._batch("alert_port_scan", "alert_port_scan"),
            CampaignEvent(kind="reset"),
            self._batch("alert_login_normal", poison, "alert_login_normal"),
            self._batch("alert_port_scan"),
            CampaignEvent(kind="reopen"),
        ]
        campaign = self._campaign(events)

        def failing(candidate: Campaign) -> bool:
            return any(a.name == poison for a in candidate.alerts())

        shrunk = shrink_campaign(campaign, failing)
        assert failing(shrunk)
        assert shrunk.num_alerts == 1
        assert shrunk.alerts()[0].name == poison
        assert all(e.kind == "batch" for e in shrunk.events)
        assert shrunk.label.endswith("-shrunk")

    def test_non_failing_campaign_returned_unchanged(self):
        campaign = self._campaign([self._batch("alert_port_scan")])
        assert shrink_campaign(campaign, lambda c: False) is campaign

    def test_respects_evaluation_budget(self):
        campaign = self._campaign(
            [self._batch(*["alert_port_scan"] * 10) for _ in range(10)]
        )
        calls = []

        def failing(candidate: Campaign) -> bool:
            calls.append(1)
            return True

        shrink_campaign(campaign, failing, max_evaluations=25)
        assert len(calls) <= 25

    def test_shrinks_a_real_oracle_failure(self):
        """End to end: seeded fault -> shrunk repro still failing."""
        campaign = CampaignComposer(5, target_alerts=100).compose(0)

        def failing(candidate: Campaign) -> bool:
            # Stand-in for "the oracle diverges": the failure needs a
            # reset_entity event AND an alert for that entity after it.
            for index, event in enumerate(candidate.events):
                if event.kind != "reset_entity":
                    continue
                for later in candidate.events[index + 1 :]:
                    if later.kind == "batch" and any(
                        a.entity == event.entity for a in later.alerts
                    ):
                        return True
            return False

        if not failing(campaign):  # pragma: no cover - seed-dependent guard
            pytest.skip("composed campaign lacks the reset-then-alert shape")
        shrunk = shrink_campaign(campaign, failing)
        assert failing(shrunk)
        assert shrunk.num_alerts <= 2
        assert len(shrunk.events) <= 3
