"""Tests for the incident dataset: patterns, generator, corpus."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DEFAULT_VOCABULARY
from repro.incidents import (
    AttackPattern,
    DEFAULT_CATALOGUE,
    DOWNLOAD_COMPILE_ERASE,
    GeneratorConfig,
    GroundTruth,
    Incident,
    IncidentCorpus,
    IncidentGenerator,
    IncidentReport,
    PatternCatalogue,
    contains_download_compile_erase,
    download_compile_erase_prevalence,
)
from repro.incidents.generator import TARGET_MOTIF_PREVALENCE, _contained_in_some_interleaving
from repro.core.sequences import AlertSequence, is_subsequence


class TestPatternCatalogue:
    def test_has_43_patterns(self):
        assert len(DEFAULT_CATALOGUE) == 43

    def test_names_are_s1_to_s43(self):
        assert DEFAULT_CATALOGUE.names() == [f"S{i}" for i in range(1, 44)]

    def test_lengths_between_2_and_14(self):
        lengths = DEFAULT_CATALOGUE.lengths()
        assert min(lengths) == 2
        assert max(lengths) == 14

    def test_every_pattern_alert_in_vocabulary(self):
        for pattern in DEFAULT_CATALOGUE:
            for name in pattern.names:
                assert name in DEFAULT_VOCABULARY, name

    def test_max_base_frequency_is_14_for_s1(self):
        frequencies = {p.name: p.base_frequency for p in DEFAULT_CATALOGUE}
        assert frequencies["S1"] == 14
        assert max(frequencies.values()) == 14

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            AttackPattern("X", ("alert_port_scan",), family="f")
        with pytest.raises(ValueError):
            AttackPattern("X", tuple(["alert_port_scan"] * 15), family="f")

    def test_duplicate_names_rejected(self):
        pattern = AttackPattern("X", ("alert_port_scan", "alert_vuln_scan"), family="f")
        with pytest.raises(ValueError):
            PatternCatalogue([pattern, pattern])

    def test_motif_semantic_containment(self):
        assert contains_download_compile_erase(DOWNLOAD_COMPILE_ERASE)
        weak = ("alert_download_sensitive", "alert_suspicious_compile", "alert_erase_forensic_trace")
        assert contains_download_compile_erase(weak)
        assert not contains_download_compile_erase(weak[::-1])

    def test_families_cover_paper_spectrum(self):
        families = set(DEFAULT_CATALOGUE.families())
        assert {"rootkit", "credential_theft", "ransomware", "lateral_movement"} <= families

    def test_no_pattern_contained_in_other_same_length(self):
        """Equal-length catalogue patterns must be distinct sequences."""
        patterns = list(DEFAULT_CATALOGUE)
        for a in patterns:
            for b in patterns:
                if a.name != b.name and a.length == b.length:
                    assert a.names != b.names


class TestInterleavingCheck:
    @given(
        st.lists(st.sampled_from("abcde"), min_size=1, max_size=5),
        st.lists(st.sampled_from("abcde"), min_size=0, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_concatenations_are_interleavings(self, backbone, motif):
        combined = list(backbone) + list(motif)
        assert _contained_in_some_interleaving(combined, backbone, motif)

    def test_impossible_pattern_rejected(self):
        assert not _contained_in_some_interleaving(["z"], ["a"], ["b"])


class TestIncident:
    def _incident(self, names=None, year=2015):
        names = names or ["alert_login_stolen_credential", "alert_download_sensitive"]
        return Incident(
            incident_id=f"NCSA-{year}-001",
            year=year,
            family="rootkit",
            sequence=AlertSequence.from_names(names, entity="user:x"),
            ground_truth=GroundTruth(("x",), ("login00",), ("1.2.3.4",), "ssh"),
        )

    def test_round_trip_serialization(self):
        incident = self._incident()
        assert Incident.from_dict(incident.to_dict()).alert_names == incident.alert_names

    def test_invalid_year_rejected(self):
        with pytest.raises(ValueError):
            self._incident(year=1900)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            Incident(
                incident_id="NCSA-2015-001", year=2015, family="rootkit",
                sequence=AlertSequence(()),
                ground_truth=GroundTruth((), (), (), "ssh"),
            )

    def test_report_rendering(self):
        incident = self._incident()
        report = IncidentReport.render(incident)
        assert incident.incident_id in report.body
        assert "Ground truth" in report.body
        assert "alert_download_sensitive" in report.body

    def test_stage_and_critical_names(self):
        incident = self._incident(
            ["alert_login_stolen_credential", "alert_privilege_escalation"]
        )
        assert incident.critical_alert_names() == ["alert_privilege_escalation"]


class TestGenerator:
    def test_corpus_size_and_period(self, corpus):
        assert len(corpus) == 228
        assert corpus.start_year == 2000 and corpus.end_year == 2024
        assert min(corpus.years()) >= 2000 and max(corpus.years()) <= 2024

    def test_motif_prevalence_matches_paper(self, corpus):
        prevalence = download_compile_erase_prevalence(corpus.alert_name_sequences())
        assert prevalence == pytest.approx(TARGET_MOTIF_PREVALENCE, abs=0.02)

    def test_every_pattern_backed_incident_contains_its_pattern(self, corpus):
        for incident in corpus:
            for pattern_name in incident.pattern_names:
                pattern = DEFAULT_CATALOGUE.get(pattern_name)
                assert is_subsequence(pattern.names, incident.alert_names)

    def test_critical_alert_types_match_vocabulary(self, corpus):
        stats = corpus.critical_alert_stats()
        assert stats["unique_critical_alert_types"] == 19
        assert stats["critical_alert_occurrences"] < corpus.stats().filtered_alerts

    def test_determinism(self):
        config = GeneratorConfig(num_incidents=40)
        a = IncidentGenerator(seed=5, config=config).generate_corpus()
        b = IncidentGenerator(seed=5, config=config).generate_corpus()
        assert [i.alert_names for i in a] == [i.alert_names for i in b]
        c = IncidentGenerator(seed=6, config=config).generate_corpus()
        assert [i.alert_names for i in a] != [i.alert_names for i in c]

    def test_small_corpus_config(self):
        corpus = IncidentGenerator(seed=1, config=GeneratorConfig(num_incidents=30)).generate_corpus()
        assert len(corpus) == 30

    def test_benign_sequences_have_no_critical_alerts(self, benign_sequences):
        for sequence in benign_sequences:
            assert not sequence.critical_alerts()

    def test_daily_volumes_positive_and_calibrated(self, generator):
        volumes = IncidentGenerator(seed=11).daily_alert_volumes(120)
        assert np.all(volumes > 0)
        assert abs(volumes.mean() - 94_238) < 0.15 * 94_238

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_incidents=0)
        with pytest.raises(ValueError):
            GeneratorConfig(start_year=2020, end_year=2010)
        with pytest.raises(ValueError):
            GeneratorConfig(motif_prevalence=1.5)

    def test_incident_timing_is_monotone(self, corpus):
        for incident in corpus:
            gaps = incident.sequence.inter_alert_gaps()
            assert np.all(gaps >= 0)


class TestCorpus:
    def test_stats_reproduce_table1_shape(self, corpus):
        stats = corpus.stats()
        assert 20e6 < stats.total_raw_alerts < 30e6
        assert 150e3 < stats.filtered_alerts < 230e3
        assert 25 < stats.data_size_terabytes < 35
        assert stats.span_years == 25
        assert len(stats.as_table()) == 5

    def test_family_and_year_views(self, corpus):
        families = corpus.families()
        assert "ransomware" in families
        total = sum(len(corpus.by_family(f)) for f in families)
        assert total == len(corpus)
        assert sum(len(corpus.by_year(y)) for y in corpus.years()) == len(corpus)

    def test_chronological_split(self, corpus):
        train, test = corpus.chronological_split(0.7)
        assert len(train) + len(test) == len(corpus)
        assert max(i.start_time for i in train) <= min(i.start_time for i in test)

    def test_random_split_deterministic(self, corpus):
        train_a, _ = corpus.random_split(0.8, seed=3)
        train_b, _ = corpus.random_split(0.8, seed=3)
        assert [i.incident_id for i in train_a] == [i.incident_id for i in train_b]

    def test_jsonl_round_trip(self, corpus, tmp_path):
        path = corpus.save_jsonl(tmp_path / "corpus.jsonl")
        loaded = IncidentCorpus.load_jsonl(path)
        assert len(loaded) == len(corpus)
        assert loaded.stats().total_raw_alerts == corpus.stats().total_raw_alerts
        assert loaded[0].alert_names == corpus[0].alert_names

    def test_get_by_id(self, corpus):
        incident = corpus[0]
        assert corpus.get(incident.incident_id) is incident
        with pytest.raises(KeyError):
            corpus.get("NCSA-1999-999")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            IncidentCorpus([], 2000, 2024, 0, 0)


class TestFuzzCorpusRoundTrip:
    """JSONL persistence on fuzzer-generated (non-default) corpora.

    Fuzz campaigns carry adversarial content the default generator
    never produces -- unicode entity names, duplicate timestamps,
    scenario attribute payloads -- so the round-trip must be exercised
    on them, not just on the synthetic Fig. 3b corpus.
    """

    @pytest.fixture(scope="class", params=[0, 11])
    def fuzz_corpus(self, request):
        from repro.fuzz import CampaignComposer, campaign_to_corpus

        composer = CampaignComposer(request.param, target_alerts=150)
        return campaign_to_corpus(composer.compose(0, raw_capable=request.param % 2))

    def test_save_load_reconstructs_incidents_exactly(self, fuzz_corpus, tmp_path):
        path = fuzz_corpus.save_jsonl(tmp_path / "fuzz-corpus.jsonl")
        loaded = IncidentCorpus.load_jsonl(path)
        assert len(loaded) == len(fuzz_corpus)
        for original, copy in zip(fuzz_corpus, loaded):
            assert copy.incident_id == original.incident_id
            assert copy.family == original.family
            assert tuple(copy.sequence) == tuple(original.sequence)
            # Alert equality excludes attributes; incident persistence
            # must keep them anyway (scenario metadata, fuzz payloads).
            for a, b in zip(original.sequence, copy.sequence):
                assert dict(b.attributes) == dict(a.attributes)
            assert copy.ground_truth == original.ground_truth

    def test_stats_survive_the_round_trip(self, fuzz_corpus, tmp_path):
        path = fuzz_corpus.save_jsonl(tmp_path / "fuzz-corpus.jsonl")
        loaded = IncidentCorpus.load_jsonl(path)
        original, copy = fuzz_corpus.stats(), loaded.stats()
        assert copy == original
        assert copy.reduction_factor == original.reduction_factor
        assert loaded.critical_alert_stats() == fuzz_corpus.critical_alert_stats()
        assert loaded.sequence_length_histogram() == fuzz_corpus.sequence_length_histogram()
