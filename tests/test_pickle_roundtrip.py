"""Pickle round-trip properties for every checkpointed class.

The ``pickle-safety`` staticcheck rule audits these classes
*statically* (no lambdas/locks/handles outside the ``__getstate__``
drop-list); this suite is the dynamic counterpart.  For each class in
:data:`repro.staticcheck.rules.pickle_safety.CHECKPOINTED_CLASS_NAMES`
it pins three properties:

* **round-trips** — ``pickle.loads(pickle.dumps(x))`` succeeds on live,
  mid-stream state (Hypothesis drives bursty unicode streams into the
  stateful detectors);
* **drop-lists are honoured** — attributes ``__getstate__`` excludes
  (track decoder caches, the batched kernel, the sliding window's
  scratch buffer) really are absent/reset after unpickling;
* **behavioural equivalence** — the restored object continues the
  stream exactly as the original would have (and re-pickling is
  canonical: same bytes regardless of lazily rebuilt caches).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AttackTagger
from repro.core.alerts import Alert
from repro.core.attack_tagger import EntityTrack
from repro.core.baselines import CriticalAlertDetector, NaiveBayesDetector
from repro.core.rule_based import RuleBasedDetector
from repro.core.sequences import AlertSequence
from repro.core.sliding_window import SlidingProductWindow
from repro.core.streaming import StreamingDecoder
from repro.core.training import LabeledSequence
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed.sharding import DetectorTemplate

_PATTERNS = list(DEFAULT_CATALOGUE)
_ALL_NAMES = sorted({name for pattern in _PATTERNS for name in pattern.names})

_SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def _split_stream(draw) -> tuple[list[Alert], list[Alert]]:
    """A bursty unicode stream split at a pickle point.

    Mirrors the checkpoint suite's adversarial shape: few entities with
    skewed volumes (so a small decode window saturates and evicts) and
    entity names spanning non-Latin scripts.
    """
    entity_pool = draw(
        st.lists(
            st.text(
                alphabet=st.characters(
                    codec="utf-8", blacklist_categories=("Cs",), min_codepoint=33
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    events = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_ALL_NAMES),
                st.sampled_from(entity_pool),
                st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    stream, timestamp = [], 0.0
    for name, entity, delta in events:
        timestamp += delta
        stream.append(Alert(timestamp, name, entity))
    cut = draw(st.integers(min_value=0, max_value=len(stream)))
    return stream[:cut], stream[cut:]


def _round_trip(obj):
    blob = pickle.dumps(obj)
    return pickle.loads(blob), blob


# ---------------------------------------------------------------------------
# AttackTagger (and, through it, EntityTrack + StreamingDecoder state)
# ---------------------------------------------------------------------------
class TestAttackTaggerRoundTrip:
    @_SETTINGS
    @given(parts=_split_stream(), engine=st.sampled_from(("streaming", "batched")))
    def test_drop_list_honoured_and_continuation_identical(self, parts, engine):
        prefix, suffix = parts
        # max_window=4 saturates the sliding window on bursty entities —
        # the decoder state hardest to drop/rebuild correctly.
        original = AttackTagger(patterns=_PATTERNS, max_window=4, engine=engine)
        original.observe_many(prefix)

        restored, blob = _round_trip(original)

        # __getstate__ drop-list: decoder caches and the batched kernel
        # never cross the pickle boundary.
        for track in restored._tracks.values():
            assert track.decoder is None
        assert restored._batch_kernel is None

        # Canonical bytes: re-pickling the restored tagger reproduces
        # the original pickle exactly (no cache-dependent payloads).
        assert pickle.dumps(restored) == blob

        # Behavioural equivalence: both continue the stream identically
        # (the restored side rebuilds decoders lazily, bit-identically).
        assert restored.observe_many(suffix) == original.observe_many(suffix)
        assert restored.detections == original.detections

    def test_decoder_rebuilt_lazily_and_bit_identically(self):
        # A threshold of 1 - 1e-9 keeps the entity undetected, so the live
        # decoder cache survives the whole stream on the original side.
        stream = [
            Alert(float(i + 1), _ALL_NAMES[i % len(_ALL_NAMES)], "user:α")
            for i in range(12)
        ]
        original = AttackTagger(
            patterns=_PATTERNS, max_window=4, detection_threshold=1 - 1e-9
        )
        original.observe_many(stream)
        (track,) = original._tracks.values()
        assert track.decoder is not None

        restored = pickle.loads(pickle.dumps(original))
        (restored_track,) = restored._tracks.values()
        assert restored_track.decoder is None

        # One more alert forces the lazy rebuild; the rebuilt decoder
        # must agree with the never-pickled one bit for bit.
        extra = Alert(99.0, _ALL_NAMES[0], "user:α")
        assert restored.observe(extra) == original.observe(extra)
        assert restored_track.decoder is not None
        np.testing.assert_array_equal(
            restored_track.decoder.final_marginal(),
            track.decoder.final_marginal(),
        )


# ---------------------------------------------------------------------------
# SlidingProductWindow
# ---------------------------------------------------------------------------
class TestSlidingWindowRoundTrip:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_push=st.integers(min_value=1, max_value=12),
        n_pop=st.integers(min_value=0, max_value=11),
    )
    def test_scratch_dropped_and_apply_bit_identical(self, seed, n_push, n_pop):
        rng = np.random.default_rng(seed)
        window = SlidingProductWindow()
        for index in range(n_push):
            window.push(index, rng.standard_normal((3, 3)))
        for _ in range(min(n_pop, n_push - 1)):
            window.pop_front()

        assert "_scratch" not in window.__getstate__()

        head = rng.standard_normal(3)
        pristine = pickle.dumps(window)
        max_before, lse_before = window.apply(head)
        # apply() sized the scratch buffer; pickled bytes must not see it.
        assert pickle.dumps(window) == pristine

        restored = pickle.loads(pristine)
        assert restored._scratch is None
        assert len(restored) == len(window)
        max_after, lse_after = restored.apply(head)
        np.testing.assert_array_equal(max_before, max_after)
        np.testing.assert_array_equal(lse_before, lse_after)


# ---------------------------------------------------------------------------
# StreamingDecoder + EntityTrack (pickled inside checkpoints/snapshots)
# ---------------------------------------------------------------------------
class TestDecoderAndTrackRoundTrip:
    def _live_track(self) -> EntityTrack:
        # Threshold 1 - 1e-9: no detection fires, so the tagger keeps
        # the incremental decoder cache alive on the track.
        tagger = AttackTagger(
            patterns=_PATTERNS, max_window=4, detection_threshold=1 - 1e-9
        )
        for step, name in enumerate(_ALL_NAMES[:8]):
            tagger.observe(Alert(float(step + 1), name, "user:β"))
        (track,) = tagger._tracks.values()
        assert track.decoder is not None
        return track

    def test_streaming_decoder_round_trips_mid_window(self):
        decoder = self._live_track().decoder
        restored, _ = _round_trip(decoder)
        assert isinstance(restored, StreamingDecoder)
        np.testing.assert_array_equal(
            restored.final_marginal(), decoder.final_marginal()
        )
        restored.append(_ALL_NAMES[0])
        decoder.append(_ALL_NAMES[0])
        assert (
            restored.final_malicious_probability()
            == decoder.final_malicious_probability()
        )

    def test_entity_track_round_trips_with_dropped_decoder(self):
        import dataclasses

        track = dataclasses.replace(self._live_track(), decoder=None)
        restored, _ = _round_trip(track)
        assert restored.entity == track.entity
        assert list(restored.alerts) == list(track.alerts)
        assert restored.decoder is None
        assert restored.detected == track.detected


# ---------------------------------------------------------------------------
# DetectorTemplate (crosses worker pipes as the shard factory)
# ---------------------------------------------------------------------------
class TestDetectorTemplateRoundTrip:
    def test_factory_survives_pipe_and_stamps_fresh_detectors(self):
        template = DetectorTemplate(AttackTagger(patterns=_PATTERNS, max_window=4))
        restored, _ = _round_trip(template)
        first, second = restored(), restored()
        assert first is not second
        detection = first.observe(Alert(1.0, _ALL_NAMES[0], "user:γ"))
        assert second.detections == []
        assert first.detections == ([detection] if detection else [])


# ---------------------------------------------------------------------------
# Baseline detectors (checkpointed via the pipeline's detector map)
# ---------------------------------------------------------------------------
def _fitted_naive_bayes() -> NaiveBayesDetector:
    attack = AlertSequence(
        tuple(
            Alert(float(i + 1), name, "train:attack")
            for i, name in enumerate(_PATTERNS[0].names)
        )
    )
    benign = AlertSequence(
        tuple(Alert(float(i + 1), _ALL_NAMES[-1], "train:benign") for i in range(3))
    )
    detector = NaiveBayesDetector()
    detector.fit(
        [
            LabeledSequence(attack, labels=(2,) * len(attack), is_attack=True),
            LabeledSequence(benign, labels=(0,) * len(benign), is_attack=False),
        ]
    )
    return detector


@pytest.mark.parametrize(
    "factory",
    [CriticalAlertDetector, _fitted_naive_bayes, RuleBasedDetector],
    ids=["critical", "naive-bayes", "rule-based"],
)
class TestBaselineDetectorRoundTrip:
    @_SETTINGS
    @given(parts=_split_stream())
    def test_continuation_identical_after_round_trip(self, factory, parts):
        prefix, suffix = parts
        original = factory()
        original.observe_many(prefix)
        restored, blob = _round_trip(original)
        assert pickle.dumps(restored) == blob
        assert restored.observe_many(suffix) == original.observe_many(suffix)
        assert restored.detections == original.detections
