"""Overlapped-driver equivalence suite and pending-raw semantics.

The pipeline's overlapped (double-buffered) drivers
(:meth:`TestbedPipeline.ingest_raw_stream` /
:meth:`TestbedPipeline.ingest_alert_batches`) normalise and filter
batch N+1 while the detection stage's shard workers hold batch N.  No
stage feeds state back into an earlier one, so the overlapped schedule
must be *bit-identical* to the batch-synchronous reference: same
detections (every field), same response records, same stats counters
-- for both sharding backends, at several shard counts (plus the
``REPRO_SHARDS`` CI matrix value).

This module also pins the pending-raw mixing fix: records published
directly onto the mirror are drained by the *next* ingestion call of
either kind, not silently folded into a later ``ingest_raw`` batch.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import AttackTagger
from repro.core.alerts import Alert
from repro.incidents import DEFAULT_CATALOGUE
from repro.telemetry import SyslogMonitor
from repro.testbed import (
    DetectionStage,
    ShardedDetectorPool,
    ShardWorkerError,
    TestbedPipeline,
)

from test_sharding import COUNTER_KEYS, PoisonDetector, build_mixed_stream

#: Extra shard count injected by the CI matrix (REPRO_SHARDS={1,4}).
EXTRA_SHARDS = int(os.environ.get("REPRO_SHARDS", "1"))
SHARD_COUNTS = sorted({1, 2, 4, EXTRA_SHARDS})


def fresh_pipeline(n_shards: int, backend: str) -> TestbedPipeline:
    return TestbedPipeline(
        detectors={"factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE))},
        n_shards=n_shards,
        shard_backend=backend,
    )


def split_batches(stream: list, n_batches: int) -> list[list]:
    bounds = np.linspace(0, len(stream), n_batches + 1).astype(int)
    return [stream[start:stop] for start, stop in zip(bounds[:-1], bounds[1:])]


def run_batch_synchronous(batches, *, n_shards: int, backend: str):
    """The reference: one blocking ``ingest_alerts`` call per batch."""
    with fresh_pipeline(n_shards, backend) as pipeline:
        detections = []
        for batch in batches:
            detections.extend(pipeline.ingest_alerts(batch))
        return (
            detections,
            pipeline.summary(),
            list(pipeline.detections),
            list(pipeline.responder.notifications),
            list(pipeline.responder.actions),
        )


def run_overlapped(batches, *, n_shards: int, backend: str):
    with fresh_pipeline(n_shards, backend) as pipeline:
        detections = pipeline.ingest_alert_batches(batches)
        return (
            detections,
            pipeline.summary(),
            list(pipeline.detections),
            list(pipeline.responder.notifications),
            list(pipeline.responder.actions),
        )


@pytest.fixture(scope="module")
def mixed_batches():
    """Randomized multi-entity attack/benign stream, split into 6 batches."""
    return split_batches(
        build_mixed_stream(seed=31, n_entities=80, length=4_000), 6
    )


@pytest.fixture(scope="module")
def baseline(mixed_batches):
    """Unsharded batch-synchronous reference run."""
    return run_batch_synchronous(mixed_batches, n_shards=1, backend="serial")


class TestOverlapEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_overlapped_driver_is_bit_identical(
        self, mixed_batches, baseline, n_shards, backend
    ):
        base_detections, base_summary, base_log, base_notes, base_records = baseline
        detections, summary, log, notes, records = run_overlapped(
            mixed_batches, n_shards=n_shards, backend=backend
        )
        assert detections, "the mixed stream must produce detections"
        assert detections == base_detections
        assert log == base_log
        # Response path: same notifications and same response records.
        assert notes == base_notes
        assert records == base_records
        for key in COUNTER_KEYS:
            assert summary[key] == base_summary[key], key

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_overlap_matches_batch_sync_at_same_shard_count(
        self, mixed_batches, backend
    ):
        """Sharded sync vs sharded overlapped: identical, per config."""
        sync = run_batch_synchronous(mixed_batches, n_shards=2, backend=backend)
        overlapped = run_overlapped(mixed_batches, n_shards=2, backend=backend)
        assert overlapped[0] == sync[0]
        assert overlapped[2:] == sync[2:]
        for key in COUNTER_KEYS:
            assert overlapped[1][key] == sync[1][key], key

    def test_raw_stream_driver_matches_ingest_raw(self):
        """Overlapped raw-record driver == looped ``ingest_raw``."""

        def raw_batches():
            monitor = SyslogMonitor("internal-host")
            for index in range(120):
                monitor.sshd_accepted(
                    float(index), f"user{index % 9}", f"10.0.0.{index % 17}"
                )
                if index % 5 == 0:
                    monitor.wget_download(
                        float(index) + 0.5,
                        f"user{index % 9}",
                        "http://64.215.33.18/abs.c",
                    )
            return split_batches(monitor.records, 5)

        with fresh_pipeline(2, "process") as sync:
            sync_detections = []
            for batch in raw_batches():
                sync_detections.extend(sync.ingest_raw(batch))
            sync_summary = sync.summary()
        with fresh_pipeline(2, "process") as overlapped:
            detections = overlapped.ingest_raw_stream(raw_batches())
            summary = overlapped.summary()
        assert detections == sync_detections
        for key in COUNTER_KEYS:
            assert summary[key] == sync_summary[key], key
        assert summary["raw_records"] > 0
        assert summary["normalized_alerts"] > 0

    def test_overlapped_driver_keeps_per_stage_timing(self, mixed_batches):
        with fresh_pipeline(2, "process") as pipeline:
            pipeline.ingest_alert_batches(mixed_batches)
            stats = pipeline.stats
        assert set(stats.stage_seconds) >= {"filter", "detect", "respond"}
        assert stats.detection_seconds == stats.stage_seconds["detect"]
        assert stats.detection_seconds > 0.0
        assert stats.response_seconds == stats.stage_seconds["respond"]

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_empty_and_single_batch_streams(self, backend):
        with fresh_pipeline(2, backend) as pipeline:
            assert pipeline.ingest_alert_batches([]) == []
            batch = build_mixed_stream(seed=2, n_entities=6, length=60)
            sync = run_batch_synchronous([batch], n_shards=2, backend=backend)
            assert pipeline.ingest_alert_batches([batch]) == sync[0]


class TestOverlapFailureRecovery:
    """Failures mid-stream must not leave stale batches in flight."""

    def test_prep_exception_does_not_leak_inflight_batch(self):
        stream = build_mixed_stream(seed=41, n_entities=20, length=600)
        batch1, batch2 = stream[:300], stream[300:]
        with fresh_pipeline(2, "process") as reference:
            ref_d1 = reference.ingest_alerts(batch1)
            ref_d2 = reference.ingest_alerts(batch2)
            ref_log = list(reference.detections)
            ref_summary = reference.summary()

        with fresh_pipeline(2, "process") as pipeline:
            def poisoned_source():
                yield batch1
                raise RuntimeError("record source failed")

            with pytest.raises(RuntimeError, match="record source failed"):
                pipeline.ingest_alert_batches(poisoned_source())
            # Batch 1 was submitted before the source died; the unwind
            # must have finished it rather than leaving its ticket in
            # flight for the next call to mistake for its own.
            assert pipeline.detection_stage.pending_batches == 0
            assert pipeline.stats.detections == len(ref_d1)
            resumed = pipeline.ingest_alerts(batch2)
            assert resumed == ref_d2, "stale ticket returned for a later batch"
            assert list(pipeline.detections) == ref_log
            summary = pipeline.summary()
        for key in COUNTER_KEYS:
            assert summary[key] == ref_summary[key], key

    def test_shard_crash_mid_stream_surfaces_typed_error(self):
        clean = [Alert(float(i), "alert_port_scan", f"host:p{i}") for i in range(40)]
        poisoned = clean[:20] + [Alert(20.5, "alert_outbound_c2", "host:poison")]
        pipeline = TestbedPipeline(
            detectors={"factor_graph": PoisonDetector()},
            n_shards=2,
            shard_backend="process",
        )
        with pipeline:
            with pytest.raises(ShardWorkerError) as excinfo:
                pipeline.ingest_alert_batches([clean[:10], poisoned, clean[25:]])
            assert "poisoned alert" in excinfo.value.worker_traceback
            assert pipeline.detection_stage.pending_batches == 0
            # Still drivable after the crash.
            assert pipeline.ingest_alerts(clean[30:]) == []
        # close() (context exit) completed cleanly.

    def test_stage_collect_without_submit_raises_runtime_error(self):
        pool = ShardedDetectorPool.from_template(AttackTagger(), n_shards=2)
        stage = DetectionStage({"alpha": pool}, "alpha", sink=[])
        with pytest.raises(RuntimeError, match="no submitted batch"):
            stage.collect()

    def test_stage_process_with_pending_batch_raises(self):
        pool = ShardedDetectorPool.from_template(AttackTagger(), n_shards=2)
        stage = DetectionStage({"alpha": pool}, "alpha", sink=[])
        alerts = [Alert(float(i), "alert_port_scan", f"host:p{i}") for i in range(6)]
        stage.submit(alerts)
        # process() = submit + collect-oldest: with a batch already in
        # flight it would silently return that batch's detections.
        with pytest.raises(RuntimeError, match="pending"):
            stage.process(alerts)
        stage.collect()
        assert stage.process(alerts) == []

    def test_sync_path_partial_submit_failure_drains_inflight(self):
        pipeline = TestbedPipeline(
            detectors={
                "alpha": AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
                "beta": AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            },
            primary_detector="alpha",
            n_shards=2,
            shard_backend="process",
        )
        batch = [Alert(float(i), "alert_port_scan", f"host:p{i}") for i in range(8)]
        with pipeline:
            pipeline.detector_pools["beta"].close()
            for _ in range(2):  # repeated failures must not accumulate tickets
                with pytest.raises(RuntimeError, match="closed"):
                    pipeline.ingest_alerts(batch)
                assert pipeline.detection_stage.pending_batches == 0
                assert pipeline.detector_pools["alpha"].pending_batches == 0

    def test_closed_pool_is_rejected_before_any_pool_receives_the_batch(self):
        pools = {
            name: ShardedDetectorPool.from_template(
                AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
                n_shards=2,
                backend="process",
            )
            for name in ("alpha", "beta")
        }
        stage = DetectionStage(pools, "alpha", sink=[])
        pools["beta"].close()
        alerts = [Alert(float(i), "alert_port_scan", f"host:p{i}") for i in range(8)]
        with pytest.raises(RuntimeError, match="beta.*closed"):
            stage.submit(alerts)
        # The deterministic rejection fired before any pool received
        # the batch, so a caller retry cannot double-apply it to alpha.
        assert stage.pending_batches == 0
        assert pools["alpha"].pending_batches == 0
        assert pools["alpha"].alerts_routed == [0, 0]
        pools["alpha"].close()


class TestMidStreamEntityReset:
    """``reset_entity`` injected through the overlapped drivers.

    The pool-level semantics (tagger / ShardedDetectorPool) are covered
    in test_detectors.py / test_sharding.py; this class pins the
    end-to-end behaviour through ``ingest_alert_batches`` with a ticket
    in flight: the pipeline defers the reset to the next submission
    boundary, which lands it at exactly the stream position a
    batch-synchronous caller issuing it between the two batches gets.
    """

    ENTITY = "user:eve"

    def _chain_batches(self):
        # This chain fires only once complete (neither half alone
        # crosses the threshold), so a reset between the halves must
        # prevent the detection.
        names = [
            "alert_db_default_password_login",
            "alert_db_largeobject_payload",
            "alert_tmp_executable_created",
            "alert_outbound_c2",
        ]
        chain = [
            Alert(float(i) * 300.0, name, self.ENTITY, source_ip="203.0.113.9")
            for i, name in enumerate(names)
        ]
        noise = build_mixed_stream(seed=13, n_entities=12, length=120)
        return [chain[:2] + noise[:60], chain[2:] + noise[60:]]

    def _run_sync_with_reset(self, batches, *, n_shards, backend, reset=True):
        with fresh_pipeline(n_shards, backend) as pipeline:
            detections = list(pipeline.ingest_alerts(batches[0]))
            if reset:
                pipeline.reset_entity(self.ENTITY)
            detections.extend(pipeline.ingest_alerts(batches[1]))
            return detections, pipeline.summary(), list(pipeline.detections)

    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_overlapped_reset_matches_batch_sync(self, n_shards, backend):
        batches = self._chain_batches()
        reference = self._run_sync_with_reset(
            batches, n_shards=n_shards, backend=backend
        )
        with fresh_pipeline(n_shards, backend) as pipeline:
            deferred_at_request = []

            def stream():
                yield batches[0]
                # Requested while batch 1's ticket is in flight: the
                # overlapped driver preps (and runs this source for)
                # batch 2 before collecting batch 1.
                deferred_at_request.append(pipeline.detection_stage.pending_batches)
                pipeline.reset_entity(self.ENTITY)
                yield batches[1]

            detections = pipeline.ingest_alert_batches(stream())
            summary = pipeline.summary()
            log = list(pipeline.detections)
        assert deferred_at_request == [1], "reset must race an in-flight ticket"
        assert detections == reference[0]
        assert log == reference[2]
        for key in COUNTER_KEYS:
            assert summary[key] == reference[1][key], key

    def test_reset_actually_changes_the_outcome(self):
        """The injected reset must prevent the chain's detection."""
        batches = self._chain_batches()
        with_reset = self._run_sync_with_reset(batches, n_shards=2, backend="serial")
        without = self._run_sync_with_reset(
            batches, n_shards=2, backend="serial", reset=False
        )
        fired_without = {d.entity for d in without[0]}
        fired_with = {d.entity for d in with_reset[0]}
        assert self.ENTITY in fired_without
        assert self.ENTITY not in fired_with

    def test_deferred_reset_is_applied_not_leaked_when_the_stream_dies(self):
        """A crash while a control is deferred must still apply it.

        The control was requested after batch N; the unwind collects
        batch N, so the control's documented stream position exists and
        it is applied there -- never left queued to fire at the start
        of a later, unrelated ingestion call.
        """
        batches = self._chain_batches()
        with fresh_pipeline(2, "serial") as pipeline:
            def dying_stream():
                yield batches[0]
                pipeline.reset_entity(self.ENTITY)  # deferred: ticket in flight
                raise RuntimeError("source died")
                yield batches[1]  # pragma: no cover

            with pytest.raises(RuntimeError, match="source died"):
                pipeline.ingest_alert_batches(dying_stream())
            assert pipeline._deferred_controls == []
            pool = pipeline.detector_pools["factor_graph"]
            assert all(
                self.ENTITY not in shard.entities() for shard in pool.shards
            )
            # The next ingestion starts clean: the chain tail alone
            # must not complete the pattern for the forgotten entity.
            assert [
                d for d in pipeline.ingest_alerts(batches[1])
                if d.entity == self.ENTITY
            ] == []

    def test_control_reaches_every_pool_even_if_one_fails(self):
        """A failing pool must not starve the other detectors of a control."""
        pipeline = TestbedPipeline(
            detectors={
                "alpha": AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
                "beta": AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            },
            primary_detector="alpha",
            n_shards=2,
            shard_backend="serial",
        )
        with pipeline:
            batches = self._chain_batches()
            pipeline.ingest_alerts(batches[0])
            # "alpha" iterates first; its failure must not stop the
            # reset from reaching "beta".
            failing = pipeline.detector_pools["alpha"]
            original = failing.reset_entity
            failing.reset_entity = lambda entity: (_ for _ in ()).throw(
                RuntimeError("alpha pool broken")
            )
            try:
                with pytest.raises(RuntimeError, match="alpha pool broken"):
                    pipeline.reset_entity(self.ENTITY)
            finally:
                failing.reset_entity = original
            beta = pipeline.detector_pools["beta"]
            assert all(
                self.ENTITY not in shard.entities() for shard in beta.shards
            )

    def test_trailing_reset_is_flushed_after_the_final_batch(self):
        batches = self._chain_batches()
        with fresh_pipeline(2, "serial") as pipeline:
            def stream():
                yield batches[0]
                yield batches[1]
                pipeline.reset_entity(self.ENTITY)

            pipeline.ingest_alert_batches(stream())
            # The trailing reset raced the final in-flight batch; the
            # driver must flush it after the last collect.
            assert pipeline._deferred_controls == []
            pool = pipeline.detector_pools["factor_graph"]
            assert all(
                self.ENTITY not in shard.entities() for shard in pool.shards
            )


class TestPendingRawDrain:
    """Directly mirrored records are drained by the next ingestion call."""

    def _record(self, timestamp: float = 10.0):
        monitor = SyslogMonitor("internal-host")
        monitor.wget_download(timestamp, "alice", "http://64.215.33.18/abs.c")
        return monitor.records[0]

    def test_ingest_alerts_drains_pending_raw(self):
        pipeline = TestbedPipeline()
        pipeline.mirror.publish_raw(self._record())
        assert pipeline._pending_raw, "record should be pending before ingestion"
        pipeline.ingest_alerts([])
        assert not pipeline._pending_raw
        # The directly-published record was processed and counted now.
        assert pipeline.stats.raw_records == 1
        assert pipeline.stats.normalized_alerts == 1

    def test_ingest_raw_attributes_pending_to_the_draining_call(self):
        pipeline = TestbedPipeline()
        pipeline.mirror.publish_raw(self._record(10.0))
        before = pipeline.stats.raw_records
        assert before == 0
        pipeline.ingest_raw([self._record(20.0)])
        # Both the pending record and the new one were processed by
        # this call (as separate batches), not deferred.
        assert pipeline.stats.raw_records == 2
        assert not pipeline._pending_raw

    def test_overlapped_drivers_drain_pending_raw(self):
        pipeline = TestbedPipeline()
        pipeline.mirror.publish_raw(self._record())
        pipeline.ingest_alert_batches([])
        assert not pipeline._pending_raw
        assert pipeline.stats.raw_records == 1

        pipeline = TestbedPipeline()
        pipeline.mirror.publish_raw(self._record())
        pipeline.ingest_raw_stream([])
        assert not pipeline._pending_raw
        assert pipeline.stats.raw_records == 1
