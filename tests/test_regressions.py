"""Replay corpus: every committed repro replays green, forever.

``tests/regressions/`` holds shrunk fuzz campaigns -- either minimal
repros of divergences the differential oracle once found, or minimal
pins of historically bug-prone shapes (mid-stream entity reset racing
an in-flight ticket, detection-tier reopen between batches, raw
unicode entities with duplicate timestamps).  Each file is replayed
through the *full* engine x shards x backend x driver matrix on every
tier-1 run, so a divergence fixed once cannot silently return.

To add a repro: run ``python -m repro.fuzz`` (it shrinks and writes
failing campaigns here automatically) and commit the JSON file.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import DifferentialOracle, full_matrix, iter_regressions

REGRESSIONS_DIR = Path(__file__).parent / "regressions"

_CORPUS = list(iter_regressions(REGRESSIONS_DIR))


def test_replay_corpus_is_not_empty():
    assert _CORPUS, "tests/regressions must contain at least one repro"


@pytest.mark.parametrize(
    "path, campaign",
    _CORPUS,
    ids=[path.stem for path, _ in _CORPUS],
)
def test_regression_replays_identically_across_the_full_matrix(path, campaign):
    verdict = DifferentialOracle(full_matrix()).run(campaign)
    assert verdict.ok, (
        f"{path.name} diverged again:\n"
        + "\n".join(str(d) for d in verdict.divergences)
    )
    assert verdict.configs_run > 0
