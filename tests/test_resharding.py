"""Live N->M resharding: bit-identity, fault interleavings, LRU routing.

The reshard contract (PR 8): because all detector state is per-entity
and routing is a pure function of the entity, migrating every entity's
state wholesale to its owner under the new shard count must leave the
output stream bit-identical -- detections, logs, counters -- to a pool
(or pipeline) that ran at the new count from the start, and to one
that never resharded at all.  This suite drives that across backends,
through the pipeline's deferred-control path under every driver,
through checkpoint/restore, and interleaved with worker SIGKILLs
(the reshard harvest must heal corpses parent-side).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import (
    ReshardEvent,
    ShardRecoveryError,
    ShardWorkerError,
    ShardedDetectorPool,
    TestbedPipeline,
    shard_of,
)

#: Benign-ish names for noise traffic.
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]


def _tagger():
    return AttackTagger(patterns=list(DEFAULT_CATALOGUE))


def build_stream(*, seed: int = 7, n_entities: int = 12, length: int = 160):
    """Mixed attack/benign multi-entity stream with increasing time."""
    rng = np.random.default_rng(seed)
    patterns = list(DEFAULT_CATALOGUE)
    pending = {}
    for index in range(0, n_entities, 3):
        pattern = patterns[int(rng.integers(0, len(patterns)))]
        pending[f"user:u{index:03d}"] = list(pattern.names)
    entities = [f"user:u{index:03d}" for index in range(n_entities)]
    alerts = []
    step = 0
    while len(alerts) < length:
        entity = entities[int(rng.integers(0, n_entities))]
        chain = pending.get(entity)
        if chain and rng.random() < 0.6:
            name = chain.pop(0)
            if not chain:
                del pending[entity]
        else:
            name = BENIGN_NAMES[int(rng.integers(0, len(BENIGN_NAMES)))]
        step += 1
        alerts.append(Alert(timestamp=float(step), name=name, entity=entity))
    return alerts


def _batches(alerts, size=20):
    return [alerts[i : i + size] for i in range(0, len(alerts), size)]


def _detection_key(detections):
    return [
        (d.entity, d.timestamp, d.alert_index, d.trigger, d.state, d.confidence,
         d.matched_patterns, d.state_trajectory)
        for d in detections
    ]


class TestPoolReshard:
    """ShardedDetectorPool.reshard at the pool level."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("old_n,new_n", [(2, 4), (4, 2), (3, 1), (1, 3)])
    def test_reshard_bit_identity(self, backend, old_n, new_n):
        alerts = build_stream()
        batches = _batches(alerts)
        cut = len(batches) // 2

        reference = ShardedDetectorPool.from_template(_tagger(), n_shards=1)
        for batch in batches:
            reference.observe_batch(batch)

        pool = ShardedDetectorPool.from_template(
            _tagger(), n_shards=old_n, backend=backend
        )
        try:
            for batch in batches[:cut]:
                pool.observe_batch(batch)
            event = pool.reshard(new_n)
            assert isinstance(event, ReshardEvent)
            assert event.old_n_shards == old_n
            assert event.new_n_shards == new_n
            assert pool.n_shards == new_n
            for batch in batches[cut:]:
                pool.observe_batch(batch)
            assert _detection_key(pool.detections) == _detection_key(
                reference.detections
            )
        finally:
            pool.close()
            reference.close()

    def test_reshard_preserves_merged_log_and_telemetry_totals(self):
        alerts = build_stream(seed=11)
        batches = _batches(alerts)
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=2)
        for batch in batches[:3]:
            pool.observe_batch(batch)
        before = list(pool.detections)
        routed_before = sum(pool.alerts_routed)
        event = pool.reshard(3)
        # The merged pool-level log survives the transition verbatim...
        assert _detection_key(pool.detections) == _detection_key(before)
        # ...and the retired telemetry keeps pre-reshard routing totals.
        assert event.alerts_routed_before == routed_before
        assert pool.alerts_routed_retired == routed_before
        assert len(pool.alerts_routed) == 3
        assert len(pool.reshard_log) == 1
        pool.close()

    def test_facade_pool_resharded_via_template_conversion(self):
        """wrap()'s identity factory converts to a clone-based template."""
        detector = _tagger()
        pool = ShardedDetectorPool.wrap(detector)
        alerts = build_stream(seed=3, length=80)
        pool.observe_batch(alerts[:40])
        pool.reshard(4)
        assert pool.n_shards == 4
        pool.observe_batch(alerts[40:])

        reference = ShardedDetectorPool.wrap(_tagger())
        reference.observe_batch(alerts)
        assert _detection_key(pool.detections) == _detection_key(
            reference.detections
        )
        pool.close()
        reference.close()

    def test_reshard_requires_migration_capable_detector(self):
        class Opaque:
            detections: list = []

            def observe(self, alert):
                return None

            def observe_batch(self, alerts):
                return []

            def reset(self):
                pass

            def reset_entity(self, entity):
                pass

            def clone(self):
                return Opaque()

        pool = ShardedDetectorPool.from_template(Opaque(), n_shards=2)
        with pytest.raises(TypeError):
            pool.reshard(3)
        pool.close()

    def test_reshard_rejects_bad_count_and_inflight(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=2)
        with pytest.raises(ValueError):
            pool.reshard(0)
        pool.submit_batch(build_stream(length=10))
        with pytest.raises(RuntimeError):
            pool.reshard(3)
        pool.collect()
        pool.close()


def _pin_memory_stream():
    return build_stream(seed=23, n_entities=16, length=120)


class TestReshardUnderKill:
    """Kill -> heal -> reshard interleavings (the harvest heals corpses)."""

    def test_reshard_heals_sigkilled_worker_mid_transition(self):
        alerts = build_stream(seed=17)
        batches = _batches(alerts)
        cut = len(batches) // 2

        reference = ShardedDetectorPool.from_template(_tagger(), n_shards=1)
        for batch in batches:
            reference.observe_batch(batch)

        pool = ShardedDetectorPool.from_template(
            _tagger(),
            n_shards=3,
            backend="process",
            restart_policy="restore",
            backoff_base=0.001,
        )
        try:
            for batch in batches[:cut]:
                pool.observe_batch(batch)
            # SIGKILL one worker, then reshard while it is dead: the
            # harvest phase must rebuild its replica parent-side from
            # the supervision snapshot + replay log.
            victim = pool._workers[1]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            event = pool.reshard(2)
            assert 1 in event.rebuilt_shards
            healed = [e for e in pool.recovery_log.for_shard(1) if e.healed]
            assert healed, "harvest heal must be audited in the RecoveryLog"
            for batch in batches[cut:]:
                pool.observe_batch(batch)
            assert _detection_key(pool.detections) == _detection_key(
                reference.detections
            )
        finally:
            pool.close()
            reference.close()

    def test_reshard_dead_worker_raise_policy_surfaces_typed_error(self):
        pool = ShardedDetectorPool.from_template(
            _tagger(), n_shards=2, backend="process", restart_policy="raise"
        )
        try:
            pool.observe_batch(build_stream(length=20))
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.reshard(3)
            assert not isinstance(excinfo.value, ShardRecoveryError)
            assert excinfo.value.shard == 0
        finally:
            pool.close()

    def test_reshard_preserves_consumed_restart_budget(self):
        # Regression: reshard() reset _restarts_used, so a service
        # resharding periodically would refresh a crash-looping
        # worker's budget forever and ShardRecoveryError could never
        # surface.  Shards that keep their index must carry their
        # consumed budget across the transition.
        pool = ShardedDetectorPool.from_template(
            _tagger(),
            n_shards=2,
            backend="process",
            restart_policy="restore",
            max_restarts=1,
            backoff_base=0.001,
        )
        try:
            pool.observe_batch(build_stream(length=20))
            victim = pool._workers[1]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            # The next batch heals the corpse, consuming the budget.
            pool.observe_batch(build_stream(seed=9, length=20))
            assert pool._restarts_used[1] == 1
            pool.reshard(2)
            assert pool._restarts_used == [0, 1]
            # A wider reshard starts brand-new shards at zero but
            # keeps index-stable shards' consumed attempts.
            pool.reshard(3)
            assert pool._restarts_used == [0, 1, 0]
            # The carried budget is live: the next death of shard 1
            # finds it exhausted and surfaces the typed error.
            victim = pool._workers[1]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(ShardRecoveryError):
                pool.observe_batch(build_stream(seed=11, length=40))
        finally:
            pool.close()

    def test_reshard_exhausted_budget_is_recovery_error(self):
        pool = ShardedDetectorPool.from_template(
            _tagger(),
            n_shards=2,
            backend="process",
            restart_policy="restore",
            max_restarts=0,
            backoff_base=0.001,
        )
        try:
            pool.observe_batch(build_stream(length=20))
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            with pytest.raises(ShardRecoveryError):
                pool.reshard(3)
        finally:
            pool.close()


class TestPipelineReshard:
    """TestbedPipeline.reshard: deferred-safe, checkpoint-aware."""

    def _pipeline(self, n_shards, backend="serial"):
        return TestbedPipeline(
            detectors={"factor_graph": _tagger()},
            n_shards=n_shards,
            shard_backend=backend,
        )

    def test_sync_reshard_matches_unsharded_reference(self):
        alerts = build_stream(seed=29)
        batches = _batches(alerts)
        with self._pipeline(1) as reference:
            expected = []
            for batch in batches:
                expected.extend(reference.ingest_alerts(batch))
            expected_summary = reference.summary()
        with self._pipeline(2) as pipeline:
            got = []
            for index, batch in enumerate(batches):
                if index == len(batches) // 2:
                    pipeline.reshard(3)
                    assert pipeline.n_shards == 3
                got.extend(pipeline.ingest_alerts(batch))
            got_summary = pipeline.summary()
            assert got_summary["reshard_events"] == 1.0
        assert _detection_key(got) == _detection_key(expected)
        for key in ("raw_records", "filtered_alerts", "detections", "responses"):
            assert got_summary[key] == expected_summary[key]

    def test_overlapped_driver_defers_reshard_to_submission_boundary(self):
        alerts = build_stream(seed=31)
        batches = _batches(alerts)
        with self._pipeline(1) as reference:
            expected = []
            for index, batch in enumerate(batches):
                expected.extend(reference.ingest_alerts(batch))
        with self._pipeline(2, backend="process") as pipeline:
            def feed():
                for index, batch in enumerate(batches):
                    if index == 2:
                        # Requested with a batch in flight: applied at
                        # the next submission boundary, i.e. between
                        # batch 1's collect and batch 2's submit.
                        pipeline.reshard(4)
                    yield batch
            got = pipeline.ingest_alert_batches(feed())
            assert pipeline.n_shards == 4
            pool = pipeline.detector_pools["factor_graph"]
            assert pool.n_shards == 4
        assert _detection_key(got) == _detection_key(expected)

    def test_checkpoint_after_reshard_records_new_count(self, tmp_path):
        alerts = build_stream(seed=37)
        batches = _batches(alerts)
        cut = len(batches) // 2
        path = tmp_path / "resharded.ckpt"
        with self._pipeline(1) as reference:
            expected = []
            for batch in batches:
                expected.extend(reference.ingest_alerts(batch))

        with self._pipeline(2) as pipeline:
            for batch in batches[:cut]:
                pipeline.ingest_alerts(batch)
            pipeline.reshard(3)
            pipeline.checkpoint(path)
            prefix = list(pipeline.detections)

        # Restore must be into a pipeline built at the NEW count.
        with self._pipeline(3) as restored:
            restored.restore(path)
            assert list(restored.detections) == prefix
            got = [d for _, d in restored.detections]
            for batch in batches[cut:]:
                got.extend(restored.ingest_alerts(batch))
        assert _detection_key(got) == _detection_key(expected)

    def test_facade_mapping_refreshed_after_reshard(self):
        detector = _tagger()
        with TestbedPipeline(detectors={"factor_graph": detector}) as pipeline:
            assert pipeline.detectors["factor_graph"] is detector
            pipeline.reshard(2)
            pool = pipeline.detector_pools["factor_graph"]
            assert pipeline.detectors["factor_graph"] is pool
            pipeline.reshard(1)
            # Back to a single serial shard: the facade exposes the
            # replica itself again (a clone, not the original object).
            assert pipeline.detectors["factor_graph"] is (
                pipeline.detector_pools["factor_graph"].shards[0]
            )

    def test_summary_surfaces_drop_and_recovery_counters(self):
        with self._pipeline(2) as pipeline:
            summary = pipeline.summary()
            for key in (
                "dropped_raw",
                "dropped_alerts",
                "recovery_attempts",
                "recoveries_healed",
                "reshard_events",
            ):
                assert key in summary
                assert summary[key] == 0.0


class TestShardRoutingLRU:
    """The entity->shard memo is bounded with cheap LRU eviction."""

    def test_cache_is_bounded_and_evicts_least_recent(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=4)
        pool.shard_cache_limit = 4
        for index in range(4):
            pool.shard_of(f"user:u{index}")
        assert list(pool._shard_cache) == [f"user:u{i}" for i in range(4)]
        # A hit refreshes recency: u0 moves to the back...
        pool.shard_of("user:u0")
        assert list(pool._shard_cache)[-1] == "user:u0"
        # ...so the next miss evicts u1 (now least recent), not u0.
        pool.shard_of("user:u9")
        assert "user:u1" not in pool._shard_cache
        assert "user:u0" in pool._shard_cache
        assert len(pool._shard_cache) == 4
        pool.close()

    def test_routing_stays_correct_across_eviction(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=8)
        pool.shard_cache_limit = 8
        entities = [f"host:h{index}" for index in range(64)]
        for _ in range(3):
            for entity in entities:
                assert pool.shard_of(entity) == shard_of(entity, 8)
            assert len(pool._shard_cache) <= 8
        pool.close()

    def test_limit_setter_validates_and_shrinks(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=2)
        for index in range(10):
            pool.shard_of(f"user:u{index}")
        pool.shard_cache_limit = 3
        assert len(pool._shard_cache) == 3
        # The three most recent survive the shrink.
        assert list(pool._shard_cache) == ["user:u7", "user:u8", "user:u9"]
        with pytest.raises(ValueError):
            pool.shard_cache_limit = 0
        pool.close()

    def test_default_limit_is_large(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=2)
        assert pool.shard_cache_limit == 1 << 17
        pool.close()

    def test_reshard_invalidates_routing_memo(self):
        pool = ShardedDetectorPool.from_template(_tagger(), n_shards=2)
        entities = [f"user:u{index}" for index in range(16)]
        for entity in entities:
            pool.shard_of(entity)
        pool.reshard(5)
        assert not pool._shard_cache
        for entity in entities:
            assert pool.shard_of(entity) == shard_of(entity, 5)
        pool.close()
