"""Tests (including property-based) for alert sequences and similarity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alerts import DEFAULT_VOCABULARY
from repro.core.sequences import (
    AlertSequence,
    fraction_of_pairs_below,
    is_subsequence,
    jaccard_similarity,
    lcs_length_matrix,
    longest_common_subsequence,
    matched_prefix_length,
    pairwise_jaccard_matrix,
    similarity_cdf,
    subsequence_positions,
)

NAMES = DEFAULT_VOCABULARY.names()
name_strategy = st.sampled_from(NAMES[:12])
sequence_strategy = st.lists(name_strategy, min_size=0, max_size=12)


class TestAlertSequence:
    def test_from_names_orders_and_lengths(self):
        seq = AlertSequence.from_names(["alert_port_scan", "alert_login_normal"])
        assert len(seq) == 2
        assert seq.names == ("alert_port_scan", "alert_login_normal")
        assert seq.duration == 60.0

    def test_rejects_unordered_alerts(self):
        from repro.core.alerts import Alert

        with pytest.raises(ValueError):
            AlertSequence((Alert(5.0, "alert_port_scan", "e"), Alert(1.0, "alert_port_scan", "e")))

    def test_prefix_and_up_to(self):
        seq = AlertSequence.from_names(["alert_port_scan"] * 5)
        assert len(seq.prefix(3)) == 3
        assert len(seq.prefix(100)) == 5
        assert len(seq.up_to(seq[2].timestamp)) == 3

    def test_filtered_keeps_only_requested_names(self):
        seq = AlertSequence.from_names(
            ["alert_port_scan", "alert_login_normal", "alert_port_scan"]
        )
        filtered = seq.filtered(["alert_port_scan"])
        assert filtered.names == ("alert_port_scan", "alert_port_scan")

    def test_critical_alerts_extraction(self):
        seq = AlertSequence.from_names(
            ["alert_login_normal", "alert_privilege_escalation", "alert_pii_in_http"]
        )
        assert [a.name for a in seq.critical_alerts()] == [
            "alert_privilege_escalation",
            "alert_pii_in_http",
        ]

    def test_inter_alert_gaps(self):
        seq = AlertSequence.from_names(["alert_port_scan"] * 4, step=30.0)
        assert np.allclose(seq.inter_alert_gaps(), [30.0, 30.0, 30.0])


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity(["a"], ["b"]) == 0.0

    def test_empty_sets(self):
        assert jaccard_similarity([], []) == 0.0

    def test_known_value(self):
        assert jaccard_similarity(["a", "b", "c"], ["b", "c", "d"]) == pytest.approx(0.5)

    @given(sequence_strategy, sequence_strategy)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        sim = jaccard_similarity(a, b)
        assert 0.0 <= sim <= 1.0
        assert sim == pytest.approx(jaccard_similarity(b, a))

    @given(st.lists(sequence_strategy, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_matrix_matches_scalar(self, name_lists):
        sequences = [AlertSequence.from_names(names) for names in name_lists]
        matrix = pairwise_jaccard_matrix(sequences)
        for i in range(len(sequences)):
            for j in range(len(sequences)):
                if i == j:
                    continue
                expected = jaccard_similarity(sequences[i].names, sequences[j].names)
                assert matrix[i, j] == pytest.approx(expected, abs=1e-9)

    def test_cdf_is_monotone(self):
        sequences = [
            AlertSequence.from_names(["alert_port_scan", "alert_vuln_scan"]),
            AlertSequence.from_names(["alert_port_scan", "alert_login_normal"]),
            AlertSequence.from_names(["alert_outbound_c2"]),
        ]
        matrix = pairwise_jaccard_matrix(sequences)
        values, fractions = similarity_cdf(matrix)
        assert np.all(np.diff(fractions) >= 0)
        assert fractions[-1] == pytest.approx(1.0)

    def test_fraction_below_threshold_bounds(self):
        sequences = [
            AlertSequence.from_names(["alert_port_scan"]),
            AlertSequence.from_names(["alert_port_scan"]),
        ]
        matrix = pairwise_jaccard_matrix(sequences)
        assert fraction_of_pairs_below(matrix, 0.99) == 0.0
        assert fraction_of_pairs_below(matrix, 1.0) == 1.0


class TestLCS:
    def test_known_lcs(self):
        a = ("x", "a", "b", "c", "y")
        b = ("a", "q", "b", "c")
        assert longest_common_subsequence(a, b) == ("a", "b", "c")

    def test_empty_inputs(self):
        assert longest_common_subsequence((), ("a",)) == ()

    @given(sequence_strategy, sequence_strategy)
    @settings(max_examples=50, deadline=None)
    def test_lcs_is_subsequence_of_both(self, a, b):
        lcs = longest_common_subsequence(tuple(a), tuple(b))
        assert is_subsequence(lcs, a)
        assert is_subsequence(lcs, b)
        assert len(lcs) <= min(len(a), len(b))

    @given(sequence_strategy)
    @settings(max_examples=30, deadline=None)
    def test_lcs_with_self_is_self(self, a):
        assert longest_common_subsequence(tuple(a), tuple(a)) == tuple(a)

    def test_lcs_length_matrix_symmetric(self):
        sequences = [
            AlertSequence.from_names(["alert_port_scan", "alert_vuln_scan", "alert_outbound_c2"]),
            AlertSequence.from_names(["alert_port_scan", "alert_outbound_c2"]),
        ]
        matrix = lcs_length_matrix(sequences)
        assert matrix[0, 1] == matrix[1, 0] == 2
        assert matrix[0, 0] == 3


class TestSubsequence:
    def test_empty_pattern_always_matches(self):
        assert is_subsequence((), ("a", "b"))

    def test_order_matters(self):
        assert is_subsequence(("a", "b"), ("a", "x", "b"))
        assert not is_subsequence(("b", "a"), ("a", "x", "b"))

    def test_positions_greedy(self):
        assert subsequence_positions(("a", "b"), ("a", "a", "b")) == [0, 2]
        assert subsequence_positions(("z",), ("a",)) is None

    def test_matched_prefix_length(self):
        assert matched_prefix_length(("a", "b", "c"), ("a", "x", "b")) == 2
        assert matched_prefix_length(("a", "b"), ()) == 0

    @given(sequence_strategy, sequence_strategy)
    @settings(max_examples=50, deadline=None)
    def test_prefix_length_consistent_with_containment(self, pattern, names):
        matched = matched_prefix_length(pattern, names)
        assert 0 <= matched <= len(pattern)
        if matched == len(pattern) and pattern:
            assert is_subsequence(pattern, names)
