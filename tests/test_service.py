"""The always-on detection service: protocol, admission, socket legs.

Three layers of coverage for :mod:`repro.service`:

* unit -- the JSONL protocol codec and serialisers round-trip every
  result type bit-for-bit; the admission controller's tier thresholds,
  shed accounting (mirror drop counters + dead-letter journal agree),
  and the deterministic client backoff policy;
* socket -- campaigns streamed to an in-process server over a real TCP
  connection must be bit-identical to the offline reference replay,
  including across a live reshard, a forced shed, and a checkpoint op
  whose file restores into an offline pipeline mid-stream;
* lifecycle -- a real ``python -m repro.service`` subprocess is sent
  SIGTERM mid-stream and must drain, write a final checkpoint, and
  exit 0; restoring that checkpoint and replaying the unsent suffix
  offline reproduces the full-run outputs exactly.

A small hypothesis state machine drives random connect / send /
control / reshard / drain interleavings against the same invariant.
"""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import time
from collections import deque
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.detector import Detection
from repro.core.states import AttackStage, HiddenState
from repro.incidents import DEFAULT_CATALOGUE
from repro.telemetry import MonitorKind, RawLogRecord
from repro.testbed import (
    CheckpointStore,
    OperatorNotification,
    ResponseAction,
    ResponseRecord,
    TestbedPipeline,
    TrafficMirror,
    read_checkpoint,
)
from repro.fuzz.campaign import CampaignComposer
from repro.fuzz.oracle import COMPARED_COUNTERS
from repro.service import (
    AdmissionController,
    AdmissionLimits,
    BackoffPolicy,
    DeadLetterJournal,
    ProtocolError,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    decode_line,
    detection_from_dict,
    detection_to_dict,
    encode_message,
    notification_to_dict,
    parse_request,
    percentile_summary,
    raw_record_from_dict,
    raw_record_to_dict,
    response_record_to_dict,
    serialize_results,
    start_service_in_thread,
)
from repro.service.protocol import MAX_LINE_BYTES
from repro.service.smoke import (
    build_service_pipeline,
    compare_results,
    reference_results,
    stream_campaign,
)

BENIGN_NAMES = sorted(DEFAULT_VOCABULARY.names_for_stage(AttackStage.BACKGROUND))


def _sample_detection() -> Detection:
    return Detection(
        entity="user:u001",
        timestamp=12.5,
        alert_index=7,
        trigger=Alert(timestamp=12.5, name="login", entity="user:u001",
                      attributes={"port": 22}),
        state=HiddenState.MALICIOUS,
        confidence=0.875,
        matched_patterns=("S1", "S7"),
        state_trajectory=(HiddenState.BENIGN, HiddenState.SUSPICIOUS,
                          HiddenState.MALICIOUS),
    )


class TestProtocol:
    def test_encode_is_deterministic_and_newline_framed(self):
        blob = encode_message({"b": 1, "a": [1.5, "x"]})
        assert blob == b'{"a":[1.5,"x"],"b":1}\n'
        assert decode_line(blob) == {"a": [1.5, "x"], "b": 1}

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1e-17, 2**-53, 6755399441055744.0, float("inf")]
        decoded = decode_line(encode_message({"v": values}))
        assert decoded["v"] == values
        assert decoded["v"][-1] == math.inf

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no op
            {"op": "warp"},  # unknown op
            {"op": "batch"},  # missing alerts
            {"op": "batch", "alerts": "nope"},
            {"op": "raw", "records": 3},
            {"op": "control", "verb": "explode"},
            {"op": "control", "verb": "reset_entity"},  # entity required
            {"op": "reshard"},  # n_shards required
            {"op": "reshard", "n_shards": 0},
            {"op": "throttle", "mode": "sideways"},
        ],
    )
    def test_parse_request_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            parse_request(payload)

    def test_parse_request_accepts_canonical_ops(self):
        request = parse_request({"op": "reshard", "n_shards": 3})
        assert request.op == "reshard" and request.n_shards == 3
        request = parse_request(
            {"op": "control", "verb": "reset_entity", "entity": "user:u1"}
        )
        assert request.entity == "user:u1"

    def test_decode_line_rejects_non_object_and_garbage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")
        with pytest.raises(ProtocolError):
            decode_line(b"{not json\n")

    def test_raw_record_round_trip(self):
        record = RawLogRecord(
            timestamp=3.25,
            monitor=MonitorKind.ZEEK,
            host="login01",
            message="ssh auth",
            fields={"id.orig_h": "10.0.0.9", "success": True},
        )
        assert raw_record_from_dict(raw_record_to_dict(record)) == record

    def test_detection_round_trip_through_json(self):
        detection = _sample_detection()
        wire = json.loads(json.dumps(detection_to_dict(detection)))
        restored = detection_from_dict(wire)
        assert restored == detection
        assert restored.state is HiddenState.MALICIOUS
        assert restored.state_trajectory == detection.state_trajectory

    def test_serialize_results_surface(self):
        detection = _sample_detection()
        notification = OperatorNotification(
            timestamp=12.5, entity="user:u001", summary="creds", detection=detection
        )
        action = ResponseRecord(
            timestamp=12.5,
            action=ResponseAction.NOTIFY_OPERATORS,
            target="user:u001",
        )
        surface = serialize_results(
            [detection], [("factor_graph", detection)], [notification], [action],
            {"detections": 1.0},
        )
        # The whole surface must survive the socket's JSON round-trip
        # unchanged -- this IS the bit-identity comparison surface.
        assert json.loads(json.dumps(surface)) == surface
        assert surface["detection_log"][0][0] == "factor_graph"
        assert surface["notifications"][0]["detection"] == detection_to_dict(detection)
        assert surface["actions"][0] == response_record_to_dict(action)


class TestAdmission:
    def _alerts(self, names):
        return [
            Alert(timestamp=float(i), name=name, entity="user:u1")
            for i, name in enumerate(names)
        ]

    def test_limits_validation(self):
        with pytest.raises(ValueError):
            AdmissionLimits(global_capacity=0)
        with pytest.raises(ValueError):
            AdmissionLimits(shed_raw_fraction=0.9, shed_low_fraction=0.5)

    def test_tier_thresholds(self):
        controller = AdmissionController(
            AdmissionLimits(global_capacity=10, per_connection=4)
        )
        assert controller.tier(0, 0) == "admit"
        assert controller.tier(4, 0) == "admit"
        assert controller.tier(5, 0) == "shed-raw"  # >= 10 * 0.5
        assert controller.tier(7, 0) == "shed-raw"  # still below 10 * 0.75
        assert controller.tier(8, 0) == "shed-low"  # >= 10 * 0.75
        assert controller.tier(10, 0) == "reject"
        assert controller.tier(0, 4) == "reject"  # per-connection bound
        controller.forced_mode = "shed-low"
        assert controller.tier(0, 0) == "shed-low"

    def test_shed_low_filters_background_and_accounts(self, tmp_path):
        mirror = TrafficMirror()
        journal = DeadLetterJournal(tmp_path / "dead.jsonl")
        controller = AdmissionController(
            AdmissionLimits(global_capacity=4),
            mirror=mirror,
            dead_letter=journal,
        )
        controller.forced_mode = "shed-low"
        batch = self._alerts([BENIGN_NAMES[0], "login", BENIGN_NAMES[1], "sudo"])
        outcome = controller.admit_alerts(batch, 0, 0)
        assert outcome.accepted and outcome.tier == "shed-low"
        assert [a.name for a in outcome.admitted] == ["login", "sudo"]
        assert outcome.shed == 2
        # Triple-entry ledger: controller counter, mirror drop counter,
        # and the dead-letter journal must all agree.
        assert controller.shed_low_priority_alerts == 2
        assert mirror.stats.dropped_alerts == 2
        assert journal.count == 2
        replayable = DeadLetterJournal.read(tmp_path / "dead.jsonl")
        assert [Alert.from_dict(e["payload"]).name for e in replayable] == [
            BENIGN_NAMES[0],
            BENIGN_NAMES[1],
        ]

    def test_shed_raw_drops_whole_batch(self):
        mirror = TrafficMirror()
        controller = AdmissionController(mirror=mirror)
        controller.forced_mode = "shed-raw"
        records = [
            RawLogRecord(
                timestamp=1.0, monitor=MonitorKind.SYSLOG, host="h", message="m"
            )
        ] * 3
        outcome = controller.admit_raw(records, 0, 0)
        assert outcome.accepted and outcome.admitted == () and outcome.shed == 3
        assert mirror.stats.dropped_raw == 3

    def test_reject_is_lossless_but_counted(self):
        controller = AdmissionController(AdmissionLimits(retry_after=0.25))
        controller.forced_mode = "reject"
        outcome = controller.admit_alerts(self._alerts(["login"]), 0, 0)
        assert not outcome.accepted
        assert outcome.retry_after == 0.25
        assert controller.rejected_batches == 1
        # Nothing was shed: a reject leaves the drop ledgers untouched.
        assert controller.shed_low_priority_alerts == 0

    def test_backoff_policy_is_deterministic_and_capped(self):
        policy = BackoffPolicy(base_delay=0.02, factor=2.0, max_delay=0.1)
        assert [policy.delay(a) for a in range(5)] == [
            0.02, 0.04, 0.08, 0.1, 0.1,
        ]

    def test_percentile_summary_nearest_rank(self):
        summary = percentile_summary(deque(float(v) for v in range(1, 101)))
        assert summary["count"] == 100
        assert summary["p50"] == 50.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0
        assert percentile_summary(deque())["count"] == 0


# ----------------------------------------------------------------------
# Socket end-to-end (in-process server, real TCP)
# ----------------------------------------------------------------------
def _serial_factory(campaign, n_shards=1, engine="streaming"):
    return lambda: build_service_pipeline(
        campaign, engine=engine, n_shards=n_shards, backend="serial"
    )


class TestServiceSocket:
    def test_streamed_campaign_is_bit_identical(self):
        campaign = CampaignComposer(1, target_alerts=80).compose(0)
        expected = reference_results(campaign)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            hello = client.hello()
            assert hello["server"] == "repro-detection-service"
            got = stream_campaign(client, campaign)
            stats = client.stats()
        assert compare_results(expected, got) == []
        assert stats["batches_processed"] > 0
        assert stats["latency"]["e2e"]["count"] == stats["batches_processed"]
        assert set(stats["latency"]["stages"]) >= {"detect", "respond"}
        for key in COMPARED_COUNTERS:
            assert key in got["counters"]

    def test_live_reshard_over_socket_is_bit_identical(self):
        campaign = CampaignComposer(1, target_alerts=80).compose(1)
        expected = reference_results(campaign)
        handle = start_service_in_thread(
            _serial_factory(campaign, n_shards=2), ServiceConfig()
        )
        with handle, handle.client() as client:
            got = stream_campaign(
                client,
                campaign,
                reshard_to=3,
                reshard_at=len(campaign.events) // 2,
            )
            stats = client.stats()
        assert compare_results(expected, got) == []
        assert stats["n_shards"] == 3
        assert stats["pipeline"]["reshard_events"] == 1.0
        assert stats["reshards"] and stats["reshards"][-1]["to"] == 3

    def test_detections_op_pages_with_since(self):
        campaign = CampaignComposer(1, target_alerts=80).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            got = stream_campaign(client, campaign)
            reply = client.detections()
            total = reply["total"]
            assert reply["detections"] == got["detections"]
            assert total == len(got["detections"])
            tail = client.detections(since=max(0, total - 2))
            assert tail["detections"] == got["detections"][max(0, total - 2):]

    def test_detections_op_orders_after_admitted_batches_without_drain(self):
        # Regression (staticcheck asyncio-blocking fix): ``detections``
        # rides the consumer FIFO as a barrier op instead of touching
        # the pipeline from the dispatch coroutine, so its reply must
        # already reflect every batch admitted before it -- no drain.
        campaign = CampaignComposer(1, target_alerts=80).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            for event in campaign.events:
                if event.kind == "batch":
                    client.send_alerts(list(event.alerts))
                elif event.kind == "reset_entity":
                    client.control("reset_entity", entity=event.entity)
                elif event.kind == "reset":
                    client.control("reset")
                elif event.kind == "reopen":
                    client.control("reopen")
            barrier_reply = client.detections()
            client.drain()
            settled = client.detections()
        assert barrier_reply["detections"] == settled["detections"]
        assert barrier_reply["total"] == settled["total"] > 0

    def test_thread_harness_closes_pipeline_after_stop(self):
        # Regression (staticcheck asyncio-blocking fix): the thread
        # harness closes the pipeline after asyncio.run returns --
        # outside the event loop -- and must not skip it on the happy
        # path: every process-backed detector pool ends up closed once
        # the handle's context exits (serial pools are no-op closes and
        # never report closed).
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(
            lambda: build_service_pipeline(
                campaign, engine="streaming", n_shards=2, backend="process"
            ),
            ServiceConfig(),
        )
        with handle, handle.client() as client:
            got = stream_campaign(client, campaign)
        assert got["counters"]["detections"] > 0
        assert handle.error is None
        assert all(
            pool.closed for pool in handle.pipeline.detector_pools.values()
        )

    def test_forced_shed_low_accounts_across_ledgers(self, tmp_path):
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        dead_letter = tmp_path / "dead.jsonl"
        handle = start_service_in_thread(
            _serial_factory(campaign),
            ServiceConfig(dead_letter_path=dead_letter),
        )
        benign = [
            Alert(timestamp=float(i), name=BENIGN_NAMES[i % len(BENIGN_NAMES)],
                  entity=f"user:u{i}")
            for i in range(6)
        ]
        with handle, handle.client() as client:
            client.throttle("shed-low")
            ack = client.send_alerts(benign + [
                Alert(timestamp=99.0, name="login", entity="user:attacker")
            ])
            assert ack["tier"] == "shed-low"
            assert ack["shed"] == 6 and ack["admitted"] == 1
            client.throttle("open")
            client.drain()
            stats = client.stats()
        assert stats["admission"]["shed_low_priority_alerts"] == 6
        assert stats["pipeline"]["dropped_alerts"] == 6.0
        assert stats["dead_letter_records"] == 6
        entries = DeadLetterJournal.read(dead_letter)
        assert len(entries) == 6
        assert {e["reason"] for e in entries} == {"shed-low-priority"}

    def test_reject_mode_raises_typed_overload(self):
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            client.throttle("reject")
            with pytest.raises(ServiceOverloadedError) as excinfo:
                client.request(
                    {"op": "batch", "alerts": [Alert(1.0, "login", "u").to_dict()]}
                )
            assert excinfo.value.retry_after > 0
            client.throttle("open")
            # The rejected batch was never enqueued: replaying it now
            # must land normally (reject is the lossless tier).
            ack = client.send_alerts([Alert(1.0, "login", "u")])
            assert ack["tier"] == "admit"
            stats = client.stats()
            assert stats["admission"]["rejected_batches"] == 1

    def test_reshard_validation_error_over_socket(self):
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.reshard(999)
            assert excinfo.value.kind == "reshard-failed"
            # The service survives the failed barrier op.
            assert client.ping()["pong"] is True

    def test_checkpoint_op_restores_into_offline_pipeline(self, tmp_path):
        campaign = CampaignComposer(1, target_alerts=80).compose(0)
        batches = [e for e in campaign.events if e.kind == "batch" and e.alerts]
        cut = max(1, len(batches) // 2)
        handle = start_service_in_thread(
            _serial_factory(campaign, n_shards=2),
            ServiceConfig(checkpoint_dir=tmp_path, keep_last=2),
        )
        with handle, handle.client() as client:
            for event in batches[:cut]:
                client.send_alerts(list(event.alerts))
            client.drain()
            reply = client.checkpoint()
            path = Path(reply["path"])
            assert path.exists() and path.parent == tmp_path
        # Resume offline from the socket-produced checkpoint.
        with build_service_pipeline(
            campaign, engine="streaming", n_shards=2, backend="serial"
        ) as resumed:
            resumed.restore(path)
            for event in batches[cut:]:
                resumed.ingest_alerts(event.alerts)
            got = [d for _, d in resumed.detections]
        with build_service_pipeline(
            campaign, engine="streaming", n_shards=2, backend="serial"
        ) as reference:
            for event in batches:
                reference.ingest_alerts(event.alerts)
            expected = [d for _, d in reference.detections]
        assert got == expected

    def test_in_contract_batch_over_64k_line_is_ingested(self):
        # Regression: without limit= on asyncio.start_server the
        # StreamReader's 64 KiB default reset any in-contract request
        # above it (the client saw a bare disconnect, never a reply).
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        pad = "x" * 256
        batch = [
            Alert(timestamp=float(i + 1), name="login",
                  entity=f"user:u{i % 7:03d}", attributes={"pad": pad})
            for i in range(1024)
        ]
        wire = encode_message({"op": "batch", "alerts": [a.to_dict() for a in batch]})
        assert 64 * 1024 < len(wire) < MAX_LINE_BYTES
        with handle, handle.client() as client:
            ack = client.send_alerts(batch)
            assert ack["tier"] == "admit" and ack["admitted"] == 1024
            client.drain()
            stats = client.stats()
        assert stats["pipeline"]["normalized_alerts"] == 1024
        assert stats["alerts_processed"] == 1024

    def test_oversized_line_replies_protocol_error_then_closes(self):
        import socket

        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle:
            with socket.create_connection(
                ("127.0.0.1", handle.port), timeout=120.0
            ) as sock:
                sock.sendall(
                    b'{"op":"ping","pad":"'
                    + b"x" * (MAX_LINE_BYTES + 4096)
                    + b'"}\n'
                )
                stream = sock.makefile("rb")
                reply = json.loads(stream.readline())
                assert reply["ok"] is False
                assert reply["error"] == "protocol"
                assert "exceeds" in reply["message"]
                # Framing is lost mid-line: the server must close.
                assert stream.readline() == b""
            # The service survives and keeps serving new connections.
            with handle.client() as client:
                assert client.ping()["pong"] is True

    def test_consumer_survives_unexpected_processing_error(self):
        # Regression: an exception escaping _process (anything other
        # than the typed shard errors at collect time) killed the
        # consumer silently -- later acks were never processed and
        # barriers hung until client timeout.
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            client.ping()
            pipeline = handle.pipeline
            original = pipeline.collect_detections

            def explode():
                pipeline.collect_detections = original  # one-shot
                raise RuntimeError("telemetry bug")

            pipeline.collect_detections = explode
            client.send_alerts([Alert(1.0, "login", "user:u001")])
            try:
                client.drain()
            except ServiceError:
                pass  # the contained error surfaced on the barrier
            # The consumer survived: later work is processed normally.
            ack = client.send_alerts([Alert(2.0, "sudo", "user:u001")])
            assert ack["tier"] == "admit"
            client.drain()
            stats = client.stats()
        assert stats["consumer_errors"] == 1
        assert stats["dead_letter_records"] >= 1
        entries = handle.service.dead_letter.entries
        assert any(e["reason"] == "consumer-error" for e in entries)

    def test_fully_shed_raw_batch_consumes_no_queue_slot(self):
        # Regression: a whole-batch shed still enqueued an empty work
        # item, marching the connection toward its reject threshold
        # with no-ops.
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(
            _serial_factory(campaign),
            ServiceConfig(limits=AdmissionLimits(per_connection=4)),
        )
        records = [
            RawLogRecord(
                timestamp=1.0, monitor=MonitorKind.SYSLOG, host="h", message="m"
            )
        ]
        with handle, handle.client() as client:
            client.throttle("shed-raw")
            # Far more fully-shed batches than the per-connection
            # bound: none may consume a slot, so none may be rejected.
            for _ in range(12):
                ack = client.send_raw(records)
                assert ack["tier"] == "shed-raw"
                assert ack["admitted"] == 0 and ack["shed"] == 1
                assert ack["queued"] == 0
            client.throttle("open")
            client.drain()
            stats = client.stats()
        assert stats["admission"]["rejected_batches"] == 0
        assert stats["admission"]["shed_raw_records"] == 12
        assert stats["batches_processed"] == 0

    def test_mutating_ops_rejected_while_draining(self):
        campaign = CampaignComposer(1, target_alerts=40).compose(0)
        handle = start_service_in_thread(_serial_factory(campaign), ServiceConfig())
        with handle, handle.client() as client:
            client.ping()
            handle.service.request_shutdown("test")
            deadline = time.monotonic() + 30.0
            rejected = False
            while time.monotonic() < deadline:
                try:
                    client.request(
                        {
                            "op": "batch",
                            "alerts": [Alert(1.0, "login", "u").to_dict()],
                        }
                    )
                except ServiceError as exc:
                    rejected = exc.kind in ("shutting-down", "disconnected")
                    break
                time.sleep(0.01)
            assert rejected


# ----------------------------------------------------------------------
# Lifecycle: a real subprocess, a real SIGTERM
# ----------------------------------------------------------------------
@pytest.mark.skipif(not hasattr(signal, "SIGTERM"), reason="POSIX signals only")
class TestGracefulShutdown:
    def _spawn(self, tmp_path):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--port", "0",
                "--shards", "2",
                "--backend", "serial",
                "--engine", "streaming",
                "--max-window", "64",
                "--threshold", "0.6",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_sigterm_drains_checkpoints_and_resumes_exactly(self, tmp_path):
        campaign = CampaignComposer(2, target_alerts=120).compose(
            0
        )
        batches = [e for e in campaign.events if e.kind == "batch" and e.alerts]
        assert len(batches) >= 2
        cut = max(1, len(batches) // 2)

        proc = self._spawn(tmp_path)
        try:
            line = proc.stdout.readline()
            assert line.startswith("LISTENING "), (line, proc.stderr.read())
            port = int(line.split()[1])
            from repro.service import ServiceClient

            with ServiceClient("127.0.0.1", port, timeout=120.0) as client:
                # Lockstep: every one of these batches is acked, hence
                # admitted, hence covered by the shutdown drain.
                for event in batches[:cut]:
                    ack = client.send_alerts(list(event.alerts))
                    assert ack["tier"] == "admit"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            stdout = proc.stdout.read()
            assert code == 0, proc.stderr.read()
            assert "STOPPED" in stdout
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        store = CheckpointStore(tmp_path / "ckpt")
        final = store.latest()
        assert final is not None, "SIGTERM must leave a final checkpoint"
        payload = read_checkpoint(final)
        assert payload["config"]["n_shards"] == 2

        def pipeline():
            tagger = AttackTagger(
                patterns=list(DEFAULT_CATALOGUE),
                engine="streaming",
                max_window=64,
                detection_threshold=0.6,
            )
            return TestbedPipeline(
                detectors={"factor_graph": tagger},
                n_shards=2,
                shard_backend="serial",
            )

        with pipeline() as resumed:
            resumed.restore(final)
            # The checkpoint already contains exactly the acked prefix:
            # the drain-then-checkpoint shutdown processed every batch
            # the client saw acknowledged, and nothing else.
            assert resumed.stats.normalized_alerts == sum(
                len(event.alerts) for event in batches[:cut]
            )
            for event in batches[cut:]:
                resumed.ingest_alerts(event.alerts)
            got = [d for _, d in resumed.detections]
        with pipeline() as reference:
            for event in batches:
                reference.ingest_alerts(event.alerts)
            expected = [d for _, d in reference.detections]
        assert got == expected


# ----------------------------------------------------------------------
# Randomised interleavings: hypothesis state machine
# ----------------------------------------------------------------------
def _stream_pool(seed: int = 5, length: int = 96):
    rng = np.random.default_rng(seed)
    patterns = list(DEFAULT_CATALOGUE)
    alerts = []
    for step in range(length):
        entity = f"user:u{int(rng.integers(0, 6)):03d}"
        if rng.random() < 0.5:
            pattern = patterns[int(rng.integers(0, len(patterns)))]
            name = pattern.names[int(rng.integers(0, len(pattern.names)))]
        else:
            name = BENIGN_NAMES[int(rng.integers(0, len(BENIGN_NAMES)))]
        alerts.append(Alert(timestamp=float(step + 1), name=name, entity=entity))
    return alerts


_POOL = _stream_pool()


def _machine_factory():
    tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE), engine="streaming",
                          max_window=64, detection_threshold=0.6)
    return TestbedPipeline(detectors={"factor_graph": tagger})


class ServiceMachine(RuleBasedStateMachine):
    """connect/send/control/reshard/drain vs an offline twin.

    Invariant (checked on every drain): the service's ``results``
    surface equals a synchronous offline pipeline fed the same
    accepted operations in ack order.
    """

    def __init__(self):
        super().__init__()
        self.handle = start_service_in_thread(_machine_factory, ServiceConfig())
        self.client = self.handle.client()
        self.ops = []

    @initialize()
    def hello(self):
        assert self.client.hello()["version"] == 1

    @rule(start=st.integers(0, len(_POOL) - 1), size=st.integers(1, 12))
    def send_batch(self, start, size):
        batch = _POOL[start : start + size]
        ack = self.client.send_alerts(batch)
        assert ack["tier"] == "admit"
        self.ops.append(("batch", batch))

    @rule(entity=st.integers(0, 5))
    def reset_entity(self, entity):
        name = f"user:u{entity:03d}"
        self.client.control("reset_entity", entity=name)
        self.ops.append(("reset_entity", name))

    @rule(n=st.integers(1, 4))
    def reshard(self, n):
        reply = self.client.reshard(n)
        self.ops.append(("reshard", n))
        assert reply["reshard"]["to"] == n

    @precondition(lambda self: self.ops)
    @rule()
    def drain_and_compare(self):
        self.client.drain()
        got = self.client.results()
        with _machine_factory() as twin:
            for kind, payload in self.ops:
                if kind == "batch":
                    twin.ingest_alerts(payload)
                elif kind == "reset_entity":
                    twin.reset_entity(payload)
                elif kind == "reshard":
                    twin.reshard(payload)
            summary = twin.summary()
            expected = json.loads(json.dumps(serialize_results(
                twin.detections_by(twin.primary_detector),
                twin.detections,
                twin.responder.notifications,
                twin.responder.actions,
                {key: summary[key] for key in COMPARED_COUNTERS},
            )))
        for field in ("detections", "detection_log", "notifications",
                      "actions", "counters"):
            assert got[field] == expected[field], field

    def teardown(self):
        try:
            self.client.close()
        finally:
            self.handle.stop()


def test_service_state_machine():
    run_state_machine_as_test(
        ServiceMachine,
        settings=settings(
            max_examples=5,
            stateful_step_count=8,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
        ),
    )
