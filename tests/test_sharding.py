"""Shard equivalence suite: sharded detection must be bit-identical.

The staged pipeline's detection layer partitions alerts by entity
across independent detector shards (serial or process backends).  All
detector state is per-entity, so the sharded runs must reproduce the
unsharded pipeline exactly -- same detections (every field, including
floating-point confidences and state trajectories), same counters.
This suite asserts that on a randomized mixed attack/benign stream,
for both backends and several shard counts (plus the count injected by
the ``REPRO_SHARDS`` CI matrix variable).
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.core import (
    AttackTagger,
    CriticalAlertDetector,
    Detector,
    NaiveBayesDetector,
    RuleBasedDetector,
)
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import (
    PoolCloseResult,
    ShardRecoveryError,
    ShardedDetectorPool,
    ShardWorkerError,
    TestbedPipeline,
    shard_of,
)

#: Extra shard count injected by the CI matrix (REPRO_SHARDS={1,4}).
EXTRA_SHARDS = int(os.environ.get("REPRO_SHARDS", "1"))
SHARD_COUNTS = sorted({1, 2, 8, EXTRA_SHARDS})

#: Benign-ish alert names that keep an entity undetected.
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]

#: Timing-free keys of ``TestbedPipeline.summary()`` (wall-clock keys
#: legitimately differ between runs).
COUNTER_KEYS = (
    "raw_records",
    "normalized_alerts",
    "filtered_alerts",
    "detections",
    "responses",
    "notifications",
    "blocked_sources",
    "normalization_drop_rate",
    "filter_reduction",
)


def build_mixed_stream(
    *, seed: int, n_entities: int, length: int
) -> list[Alert]:
    """Randomized multi-entity mix of benign noise and attack chains.

    Every fourth entity is fed one catalogue attack pattern's alert
    sequence, interleaved with benign noise; the rest see noise only.
    Entity order is shuffled per step so shards receive interleaved
    sub-streams, and timestamps strictly increase so batches stay
    time-sorted.
    """
    rng = np.random.default_rng(seed)
    patterns = list(DEFAULT_CATALOGUE)
    pending: dict[str, list[str]] = {}
    for index in range(0, n_entities, 4):
        pattern = patterns[int(rng.integers(0, len(patterns)))]
        pending[f"user:u{index:03d}"] = list(pattern.names)
    entities = [f"user:u{index:03d}" for index in range(n_entities)]
    alerts: list[Alert] = []
    step = 0
    while len(alerts) < length:
        entity = entities[int(rng.integers(0, n_entities))]
        chain = pending.get(entity)
        if chain and rng.random() < 0.5:
            name = chain.pop(0)
            if not chain:
                del pending[entity]
        else:
            name = BENIGN_NAMES[int(rng.integers(0, len(BENIGN_NAMES)))]
        host = f"node{int(entity[6:]) % 16:02d}"
        alerts.append(
            Alert(
                timestamp=float(step) * 431.0,
                name=name,
                entity=entity,
                source_ip=f"198.51.{int(entity[6:]) % 200}.7",
                host=host,
            )
        )
        step += 1
    return alerts


def run_pipeline(
    stream: list[Alert], *, n_shards: int, backend: str, batches: int = 4
) -> tuple[list, dict, "TestbedPipeline"]:
    """Run the stream through a fresh pipeline in several batches."""
    pipeline = TestbedPipeline(
        detectors={
            "factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        },
        n_shards=n_shards,
        shard_backend=backend,
    )
    detections = []
    bounds = np.linspace(0, len(stream), batches + 1).astype(int)
    with pipeline:
        for start, stop in zip(bounds[:-1], bounds[1:]):
            detections.extend(pipeline.ingest_alerts(stream[start:stop]))
        summary = pipeline.summary()
        log = list(pipeline.detections)
    return detections, summary, log


@pytest.fixture(scope="module")
def mixed_stream():
    """The randomized 10k-alert mixed attack/benign stream.

    200 entities keep every per-entity history inside the default
    ``max_window`` so the parametrized equivalence grid stays fast; the
    window-eviction decode path gets its own dedicated test below.
    """
    return build_mixed_stream(seed=23, n_entities=200, length=10_000)


@pytest.fixture(scope="module")
def baseline(mixed_stream):
    """Unsharded reference run (single serial shard = seed behaviour)."""
    return run_pipeline(mixed_stream, n_shards=1, backend="serial")


class TestShardRouting:
    def test_routing_is_stable_and_in_range(self):
        for n_shards in (1, 2, 8, 13):
            for entity in ("user:alice", "host:node01", "user:u042"):
                shard = shard_of(entity, n_shards)
                assert 0 <= shard < n_shards
                assert shard == shard_of(entity, n_shards)

    def test_routing_spreads_entities(self):
        shards = {shard_of(f"user:u{index:03d}", 8) for index in range(96)}
        assert len(shards) > 4, "96 entities should spread over >4 of 8 shards"

    def test_pool_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ShardedDetectorPool.from_template(AttackTagger(), n_shards=0)
        with pytest.raises(ValueError):
            ShardedDetectorPool.from_template(AttackTagger(), backend="threads")


class TestShardEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_run_is_bit_identical(self, mixed_stream, baseline, n_shards, backend):
        base_detections, base_summary, base_log = baseline
        detections, summary, log = run_pipeline(
            mixed_stream, n_shards=n_shards, backend=backend
        )
        assert detections, "the mixed stream must produce detections"
        # Full dataclass equality: entities, timestamps, confidences,
        # matched patterns, state trajectories -- all bit-identical.
        assert detections == base_detections
        assert log == base_log
        for key in COUNTER_KEYS:
            assert summary[key] == base_summary[key], key

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_equivalence_survives_window_eviction(self, backend):
        """Long per-entity histories (window slides + rebuilds) stay exact."""
        stream = build_mixed_stream(seed=5, n_entities=8, length=900)
        base_detections, base_summary, base_log = run_pipeline(
            stream, n_shards=1, backend="serial"
        )
        detections, summary, log = run_pipeline(stream, n_shards=3, backend=backend)
        assert detections == base_detections
        assert log == base_log
        for key in COUNTER_KEYS:
            assert summary[key] == base_summary[key], key

    def test_alerts_actually_route_to_every_shard(self, mixed_stream):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)), n_shards=8
        )
        pool.observe_batch(mixed_stream[:2_000])
        assert sum(1 for routed in pool.alerts_routed if routed) > 4


class TestShardedDetectorPool:
    def _chain_alerts(self, entity="user:eve"):
        names = [
            "alert_db_default_password_login",
            "alert_service_version_probe",
            "alert_db_largeobject_payload",
            "alert_tmp_executable_created",
            "alert_outbound_c2",
        ]
        return [
            Alert(float(i) * 300.0, name, entity, source_ip="203.0.113.9")
            for i, name in enumerate(names)
        ]

    def test_wrap_drives_the_given_instance(self):
        detector = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        pool = ShardedDetectorPool.wrap(detector)
        fired = pool.observe_batch(self._chain_alerts())
        assert fired and fired == detector.detections
        assert pool.detections == detector.detections

    def test_single_observe_routes_and_fires(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)), n_shards=4
        )
        results = [pool.observe(alert) for alert in self._chain_alerts()]
        fired = [r for r in results if r is not None]
        assert len(fired) == 1 and fired == pool.detections

    def test_reset_entity_forgets_only_that_entity(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)), n_shards=4
        )
        pool.observe_batch(self._chain_alerts("user:eve"))
        pool.observe_batch(self._chain_alerts("user:mallory"))
        assert len(pool.detections) == 2
        pool.reset_entity("user:eve")
        # Eve detects again after the reset; Mallory stays detected
        # (her shard still remembers her).
        assert len(pool.observe_batch(self._chain_alerts("user:eve"))) == 1
        assert len(pool.observe_batch(self._chain_alerts("user:mallory"))) == 0

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_pool_reset_clears_all_shards(self, backend):
        with ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=2,
            backend=backend,
        ) as pool:
            assert len(pool.observe_batch(self._chain_alerts())) == 1
            pool.reset()
            assert pool.detections == []
            assert len(pool.observe_batch(self._chain_alerts())) == 1

    def test_closed_process_pool_rejects_batches(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend="process"
        )
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.observe_batch(self._chain_alerts())

    def test_serial_pool_survives_close(self):
        # close() is a true no-op without worker processes: the default
        # (facade) pipeline stays usable after a `with` block.
        pool = ShardedDetectorPool.wrap(AttackTagger(patterns=list(DEFAULT_CATALOGUE)))
        pool.close()
        assert len(pool.observe_batch(self._chain_alerts())) == 1


class TestDetectorProtocol:
    def test_all_detectors_satisfy_the_protocol(self):
        detectors = [
            AttackTagger(),
            RuleBasedDetector(),
            CriticalAlertDetector(),
            NaiveBayesDetector(),
            ShardedDetectorPool.from_template(AttackTagger(), n_shards=2),
        ]
        for detector in detectors:
            assert isinstance(detector, Detector), type(detector).__name__


class PoisonDetector:
    """Protocol-satisfying detector that raises on a chosen alert name.

    Module-level (hence picklable) so the process backend can clone it
    into worker processes; used to assert crash propagation semantics.
    """

    def __init__(self, poison_name: str = "alert_outbound_c2") -> None:
        self.poison_name = poison_name
        self._detections: list = []
        self.observed = 0

    @property
    def detections(self) -> list:
        return list(self._detections)

    def observe(self, alert):
        if alert.name == self.poison_name:
            raise ValueError(f"poisoned alert: {alert.name}")
        self.observed += 1
        return None

    def observe_batch(self, alerts):
        found = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                found.append(detection)
        return found

    def reset(self) -> None:
        self.observed = 0
        self._detections.clear()

    def reset_entity(self, entity: str) -> None:
        pass

    def clone(self) -> "PoisonDetector":
        return PoisonDetector(self.poison_name)


def _exploding_factory():
    """Module-level (picklable) detector factory that always fails."""
    raise RuntimeError("factory exploded")


class BrokenResetDetector(PoisonDetector):
    """Observes fine, but every reset path raises."""

    def reset(self) -> None:
        raise ValueError("reset failed")

    def reset_entity(self, entity: str) -> None:
        raise ValueError("reset_entity failed")

    def clone(self) -> "BrokenResetDetector":
        return BrokenResetDetector(self.poison_name)


def _benign_alerts(count: int = 24, *, entities: int = 7) -> list[Alert]:
    return [
        Alert(float(i), "alert_port_scan", f"host:h{i % entities}")
        for i in range(count)
    ]


class TestWorkerCrashPropagation:
    """A detector exception in a shard surfaces as a typed error."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_poisoned_batch_raises_typed_error_with_traceback(self, backend):
        clean = _benign_alerts()
        poisoned = clean[:12] + [Alert(99.0, "alert_outbound_c2", "host:h3")] + clean[12:]
        with ShardedDetectorPool(PoisonDetector, n_shards=3, backend=backend) as pool:
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.observe_batch(poisoned)
            error = excinfo.value
            # The typed error names the shard and carries the worker
            # traceback (root cause preserved across the pipe).
            assert error.shard == shard_of("host:h3", 3)
            assert "ValueError: poisoned alert: alert_outbound_c2" in error.worker_traceback
            assert f"shard {error.shard}" in str(error)
            # No unread replies: the pool stays consistent and drivable.
            assert pool.pending_batches == 0
            assert pool.observe_batch(clean) == []
            assert pool.detections == []
        # close() (via the context manager) completed cleanly.

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_failed_batch_detections_are_discarded(self, backend):
        poisoned = [Alert(0.0, "alert_outbound_c2", "host:h0")]
        with ShardedDetectorPool(PoisonDetector, n_shards=2, backend=backend) as pool:
            with pytest.raises(ShardWorkerError):
                pool.observe_batch(poisoned)
            assert pool.detections == []

    def test_dead_worker_surfaces_as_typed_error_not_eoferror(self):
        pool = ShardedDetectorPool(PoisonDetector, n_shards=2, backend="process")
        try:
            # Kill one worker out from under the pool: the parent must
            # report a typed error naming the shard, not a bare EOFError.
            victim = pool._workers[0]
            victim.process.terminate()
            victim.process.join(timeout=5.0)
            alerts = _benign_alerts(16, entities=8)  # hits both shards
            routed_before = list(pool.alerts_routed)
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.observe_batch(alerts)
            assert excinfo.value.shard == 0
            assert "died without replying" in excinfo.value.worker_traceback
            assert pool.pending_batches == 0
            # The dead shard's sub-batch never left the parent, so it
            # is not counted as routed; the live shard's is.
            assert pool.alerts_routed[0] == routed_before[0]
            assert pool.alerts_routed[1] > routed_before[1]
        finally:
            pool.close()

    def test_unpicklable_alert_mid_submit_leaves_pool_consistent(self):
        # Entities owned by shard 0 and shard 1 respectively, so the
        # clean sub-batch is sent before the unpicklable one fails.
        entity_for = {shard_of(f"host:h{i}", 2): f"host:h{i}" for i in range(8)}
        batch = [
            Alert(0.0, "alert_port_scan", entity_for[0]),
            Alert(
                1.0,
                "alert_port_scan",
                entity_for[1],
                attributes={"callback": lambda: 1},  # defeats pickle
            ),
        ]
        with ShardedDetectorPool(PoisonDetector, n_shards=2, backend="process") as pool:
            with pytest.raises(Exception):
                pool.submit_batch(batch)
            # The already-sent shard's reply was drained: no stale
            # replies, no phantom pending batch, pool still drivable.
            assert pool.pending_batches == 0
            # Telemetry stays truthful: only the shard whose sub-batch
            # actually went out is counted as routed.
            assert pool.alerts_routed == [1, 0]
            assert pool.observe_batch(_benign_alerts(8)) == []

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_reset_failures_raise_the_same_typed_error_on_both_backends(self, backend):
        with ShardedDetectorPool(BrokenResetDetector, n_shards=2, backend=backend) as pool:
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.reset()
            assert "ValueError: reset failed" in excinfo.value.worker_traceback
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.reset_entity("host:h0")
            assert "ValueError: reset_entity failed" in excinfo.value.worker_traceback
            # Still drivable: observe never touches the broken paths.
            assert pool.observe_batch(_benign_alerts(6)) == []

    def test_factory_failure_is_reported_not_wedged(self):
        pool = ShardedDetectorPool(_exploding_factory, n_shards=1, backend="process")
        try:
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.observe_batch(_benign_alerts(4))
            assert "factory exploded" in excinfo.value.worker_traceback
        finally:
            pool.close()


class TestClosedPoolLifecycle:
    """Every operation on a closed process pool raises the same error."""

    def _closed_pool(self) -> ShardedDetectorPool:
        pool = ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend="process"
        )
        pool.close()
        return pool

    def test_closed_pool_rejects_reset(self):
        with pytest.raises(RuntimeError, match="closed"):
            self._closed_pool().reset()

    def test_closed_pool_rejects_reset_entity(self):
        with pytest.raises(RuntimeError, match="closed"):
            self._closed_pool().reset_entity("user:eve")

    def test_closed_pool_rejects_submit_and_collect(self):
        pool = self._closed_pool()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit_batch(_benign_alerts(4))
        with pytest.raises(RuntimeError, match="closed"):
            pool.collect()

    def test_closed_pool_reopens_into_a_working_pool(self):
        pool = self._closed_pool()
        pool.reopen()
        try:
            assert not pool.closed
            assert pool.observe_batch(_benign_alerts(4)) == []
            assert sum(pool.alerts_routed) == 4
        finally:
            pool.close()

    def test_failed_reopen_leaves_the_pool_closed_not_half_dead(self, monkeypatch):
        """A worker-spawn failure mid-reopen must not pose as open."""
        import repro.testbed.sharding as sharding_module

        pool = ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend="process"
        )
        spawned = []
        real_shard = sharding_module._ProcessShard

        def failing_spawn(index, factory):
            if index == 1:
                raise OSError("spawn failed")
            shard = real_shard(index, factory)
            spawned.append(shard)
            return shard

        monkeypatch.setattr(sharding_module, "_ProcessShard", failing_spawn)
        with pytest.raises(OSError, match="spawn failed"):
            pool.reopen()
        # The pool is cleanly closed (no dead worker handles posing as
        # live), rejects batches with the lifecycle error, and the
        # partially spawned replacement worker was shut down.
        assert pool.closed
        assert pool._workers == []
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit_batch(_benign_alerts(2))
        assert all(not shard.process.is_alive() for shard in spawned)
        monkeypatch.undo()
        pool.reopen()  # recoverable once spawning works again
        try:
            assert pool.observe_batch(_benign_alerts(2)) == []
        finally:
            pool.close()


class TestNonBlockingFanOut:
    """submit_batch()/collect() semantics shared by both backends."""

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_submit_collect_matches_observe_batch(self, backend):
        stream = build_mixed_stream(seed=3, n_entities=24, length=600)
        reference = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)), n_shards=3
        )
        expected = reference.observe_batch(stream)
        with ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=3,
            backend=backend,
        ) as pool:
            ticket = pool.submit_batch(stream)
            assert pool.pending_batches == 1
            found = pool.collect(ticket)
            assert pool.pending_batches == 0
        assert found == expected

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_multiple_batches_in_flight_collect_in_fifo_order(self, backend):
        stream = build_mixed_stream(seed=9, n_entities=16, length=400)
        batches = [stream[i : i + 100] for i in range(0, 400, 100)]
        reference = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)), n_shards=2
        )
        expected = [reference.observe_batch(batch) for batch in batches]
        with ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=2,
            backend=backend,
        ) as pool:
            tickets = [pool.submit_batch(batch) for batch in batches]
            assert pool.pending_batches == len(batches)
            # Collecting a newer ticket before the oldest is an error.
            with pytest.raises(ValueError, match="submission order"):
                pool.collect(tickets[-1])
            collected = [pool.collect(ticket) for ticket in tickets]
        assert collected == expected
        assert reference.detections == [d for found in expected for d in found]

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_collect_without_submit_raises(self, backend):
        with ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend=backend
        ) as pool:
            with pytest.raises(RuntimeError, match="no submitted batch"):
                pool.collect()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_reset_with_pending_batches_raises(self, backend):
        with ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend=backend
        ) as pool:
            pool.submit_batch(_benign_alerts(8))
            with pytest.raises(RuntimeError, match="pending"):
                pool.reset()
            with pytest.raises(RuntimeError, match="pending"):
                pool.reset_entity("host:h0")
            pool.collect()  # drain so close() is exercised on an idle pool

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_observe_batch_with_pending_batches_raises_before_submitting(self, backend):
        with ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=2,
            backend=backend,
        ) as pool:
            ticket = pool.submit_batch(_benign_alerts(8))
            routed_before = list(pool.alerts_routed)
            # The blocking wrapper must refuse up front -- shipping the
            # batch and then failing on the out-of-order ticket would
            # double-apply it on retry.
            with pytest.raises(RuntimeError, match="pending"):
                pool.observe_batch(_benign_alerts(8))
            assert pool.alerts_routed == routed_before, "batch must not be shipped"
            assert pool.pending_batches == 1
            pool.collect(ticket)

    def test_close_drains_uncollected_batches(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=2,
            backend="process",
        )
        pool.submit_batch(_benign_alerts(12))
        pool.submit_batch(_benign_alerts(12))
        assert pool.pending_batches == 2
        pool.close()  # must not wedge on the unread replies
        assert pool.pending_batches == 0
        with pytest.raises(RuntimeError, match="closed"):
            pool.observe_batch(_benign_alerts(4))


class SleepingDetector(PoisonDetector):
    """Wedges (sleeps) instead of raising on the poison alert.

    Simulates a worker stuck in a detector -- the case ``close()``'s
    join-timeout escalation exists for.
    """

    def observe(self, alert):
        if alert.name == self.poison_name:
            time.sleep(60.0)
        self.observed += 1
        return None

    def clone(self) -> "SleepingDetector":
        return SleepingDetector(self.poison_name)


class TestErrorPickleRoundTrip:
    """Shard errors must survive pickling (pipes, repro files) exactly."""

    def test_shard_worker_error_round_trips(self):
        original = ShardWorkerError(5, "Traceback ...\nValueError: boom")
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is ShardWorkerError
        assert clone.shard == original.shard
        assert clone.worker_traceback == original.worker_traceback
        assert str(clone) == str(original)

    def test_shard_recovery_error_round_trips(self):
        original = ShardRecoveryError(2, "worker process died (exitcode -9)", 3)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is ShardRecoveryError
        assert clone.shard == 2
        assert clone.worker_traceback == "worker process died (exitcode -9)"
        assert clone.attempts == 3
        assert str(clone) == str(original)

    def test_live_crash_error_round_trips(self):
        """An error raised by a real worker crash survives pickling."""
        with ShardedDetectorPool(
            lambda: PoisonDetector("alert_outbound_c2"), n_shards=2
        ) as pool:
            poisoned = _benign_alerts(4) + [
                Alert(99.0, "alert_outbound_c2", "host:h0")
            ]
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.observe_batch(poisoned)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.shard == excinfo.value.shard
        assert clone.worker_traceback == excinfo.value.worker_traceback


class TestSerialReopenAfterCrash:
    def test_serial_pool_reopens_pristine_after_detector_crash(self):
        pool = ShardedDetectorPool(
            lambda: PoisonDetector("alert_outbound_c2"), n_shards=2
        )
        benign = _benign_alerts(8)
        pool.observe_batch(benign)
        with pytest.raises(ShardWorkerError):
            pool.observe_batch([Alert(50.0, "alert_outbound_c2", "host:h0")])
        pool.reopen()
        assert not pool.closed
        assert pool.alerts_routed == [0] * 2, "telemetry zeroed by reopen"
        assert pool.observe_batch(benign) == []
        observed = sum(shard.observed for shard in pool.shards)
        assert observed == len(benign), "replicas are pristine, not resumed"


class TestCloseEscalation:
    """close() reports exactly how shutdown went (satellite: timeouts)."""

    def test_serial_close_is_a_reported_noop(self):
        pool = ShardedDetectorPool(lambda: PoisonDetector(), n_shards=2)
        result = pool.close()
        assert isinstance(result, PoolCloseResult)
        assert result.backend == "serial"
        assert result.escalations == ()
        assert result.clean

    def test_process_close_reports_one_clean_outcome_per_worker(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=3, backend="process"
        )
        result = pool.close()
        assert result.backend == "process"
        assert result.escalations == ("clean",) * 3
        assert result.clean
        assert result.drained_batches == 0
        assert not result.already_closed

    def test_double_close_reports_already_closed(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(), n_shards=2, backend="process"
        )
        assert not pool.close().already_closed
        again = pool.close()
        assert again.already_closed
        assert again.escalations == ()

    def test_close_counts_drained_batches(self):
        pool = ShardedDetectorPool.from_template(
            AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            n_shards=2,
            backend="process",
        )
        pool.submit_batch(_benign_alerts(8))
        pool.submit_batch(_benign_alerts(8))
        result = pool.close()
        assert result.drained_batches == 2
        assert result.clean

    def test_wedged_worker_is_escalated_not_waited_for(self):
        """A worker stuck in a detector must be terminated, not joined
        for the full sleep -- and the escalation must be surfaced."""
        pool = ShardedDetectorPool.from_template(
            SleepingDetector("alert_outbound_c2"), n_shards=2, backend="process"
        )
        pool.submit_batch(
            _benign_alerts(4) + [Alert(99.0, "alert_outbound_c2", "host:h0")]
        )
        started = time.perf_counter()
        result = pool.close(timeout=0.3)
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0, "close() must not wait out the wedged detector"
        assert not result.clean
        assert any(
            outcome in ("terminated", "killed") for outcome in result.escalations
        )


class TestPickleSafeShardState:
    def test_mid_stream_tagger_pickles_and_continues_identically(self, mixed_stream):
        original = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        stream = [a for a in mixed_stream[:400]]
        for alert in stream[:200]:
            original.observe(alert)
        migrated = pickle.loads(pickle.dumps(original))
        for alert in stream[200:]:
            assert original.observe(alert) == migrated.observe(alert)
        assert original.detections == migrated.detections
        for entity in original.entities():
            assert original.posterior(entity) == migrated.posterior(entity)
