"""Property tests for the flat shm codec and the per-shard ring buffer.

The zero-copy transport has two halves with independently checkable
contracts:

* :func:`repro.core.alerts.encode_alert_columns` /
  :func:`~repro.core.alerts.decode_alert_columns` must round-trip any
  packable batch byte-exactly -- the decoded columns must rebuild (via
  :func:`~repro.core.alerts.unpack_alert_columns`) exactly the alerts
  the pickle path would have delivered, for arbitrary unicode field
  values and arbitrarily nested attribute payloads.
* :class:`repro.testbed.shm_ring.ShardRing` must honour its SPSC
  allocation contract at exact-capacity boundaries: wraparound reuses
  offset 0 only when no in-flight region overlaps, releases are
  FIFO-strict, and anything that cannot be placed signals fallback by
  returning ``None`` instead of corrupting in-flight payloads.
"""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alerts import (
    ALERT_COLUMNS_MAGIC,
    Alert,
    AlertColumnsCodecError,
    decode_alert_columns,
    encode_alert_columns,
    pack_alert_columns,
    unpack_alert_columns,
)
from repro.testbed.shm_ring import DEFAULT_RING_CAPACITY, SEGMENT_PREFIX, ShardRing

# hypothesis' default text alphabet already excludes surrogates (the
# one codepoint class UTF-8 cannot carry); everything else -- astral
# plane, combining marks, NULs, bidi controls -- is fair game.
_field_text = st.text(max_size=40)

# Attribute values: everything the tagged binary encoding supports,
# recursively.  NaN is excluded here only because ``x == x`` fails for
# it; the bit-pattern round-trip is pinned by a dedicated test below.
_attr_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | _field_text
    | st.binary(max_size=32),
    lambda children: st.lists(children, max_size=3)
    | st.lists(children, max_size=3).map(tuple)
    | st.dictionaries(_field_text, children, max_size=3),
    max_leaves=12,
)

_alerts = st.builds(
    Alert,
    timestamp=st.floats(allow_nan=False),
    name=_field_text,
    entity=_field_text,
    source_ip=_field_text,
    host=_field_text,
    monitor=_field_text,
    attributes=st.dictionaries(_field_text, _attr_values, max_size=4),
)


def _as_comparable(alerts):
    """Alert tuples including attributes (``Alert.__eq__`` skips them)."""
    return [
        (
            a.timestamp,
            a.name,
            a.entity,
            a.source_ip,
            a.host,
            a.monitor,
            dict(a.attributes),
        )
        for a in alerts
    ]


class TestCodecRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_alerts, max_size=8))
    def test_round_trip_rebuilds_the_exact_batch(self, alerts):
        columns = pack_alert_columns(alerts)
        decoded = decode_alert_columns(encode_alert_columns(columns))
        assert tuple(decoded) == tuple(columns)
        assert _as_comparable(unpack_alert_columns(decoded)) == _as_comparable(
            unpack_alert_columns(columns)
        )
        assert _as_comparable(unpack_alert_columns(decoded)) == _as_comparable(alerts)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_alerts, max_size=8))
    def test_encoding_is_deterministic(self, alerts):
        columns = pack_alert_columns(alerts)
        assert encode_alert_columns(columns) == encode_alert_columns(columns)

    def test_empty_batch(self):
        columns = pack_alert_columns([])
        payload = encode_alert_columns(columns)
        decoded = decode_alert_columns(payload)
        assert tuple(decoded) == tuple(columns)
        assert unpack_alert_columns(decoded) == []

    def test_attributes_elision_is_preserved(self):
        alerts = [Alert(1.0, "alert_a", "user:alice"), Alert(2.0, "alert_b", "host:h")]
        columns = pack_alert_columns(alerts)
        assert columns[-1] is None  # no attributes anywhere -> column elided
        payload = encode_alert_columns(columns)
        magic, flags, count = struct.unpack_from("<4sBI", payload)
        assert magic == ALERT_COLUMNS_MAGIC
        assert flags & 1 == 0  # has-attributes bit clear
        assert count == 2
        assert decode_alert_columns(payload)[-1] is None

    def test_attributes_presence_sets_the_flag(self):
        alerts = [Alert(1.0, "alert_a", "user:alice", attributes={"k": 1})]
        payload = encode_alert_columns(pack_alert_columns(alerts))
        _, flags, _ = struct.unpack_from("<4sBI", payload)
        assert flags & 1 == 1

    def test_nan_timestamp_round_trips_bit_exact(self):
        nan = struct.unpack("<d", b"\x01\x00\x00\x00\x00\x00\xf8\x7f")[0]
        columns = pack_alert_columns([Alert(nan, "alert_a", "user:alice")])
        decoded = decode_alert_columns(encode_alert_columns(columns))
        (timestamp,) = decoded[0]
        assert math.isnan(timestamp)
        assert struct.pack("<d", timestamp) == struct.pack("<d", nan)

    def test_unicode_fields_survive(self):
        alerts = [
            Alert(
                0.0,
                "alert_\U0001f512",
                "user:élève",
                source_ip="☃",
                host="büro-7",
                monitor="zéek",
                attributes={"ключ": ["\U0001f4a5", b"\x00\xff"]},
            )
        ]
        columns = pack_alert_columns(alerts)
        decoded = decode_alert_columns(encode_alert_columns(columns))
        assert _as_comparable(unpack_alert_columns(decoded)) == _as_comparable(alerts)


class TestCodecRejections:
    """Unsupported payloads must raise the codec error (-> pickle path)."""

    def test_non_float_timestamp(self):
        columns = pack_alert_columns([Alert(1.0, "alert_a", "user:alice")])
        bad = ((1,),) + tuple(columns[1:])  # int timestamp
        with pytest.raises(AlertColumnsCodecError):
            encode_alert_columns(bad)

    def test_unsupported_attribute_type(self):
        alerts = [Alert(1.0, "alert_a", "user:alice", attributes={"k": {1, 2}})]
        with pytest.raises(AlertColumnsCodecError):
            encode_alert_columns(pack_alert_columns(alerts))

    def test_non_string_attribute_key(self):
        alerts = [Alert(1.0, "alert_a", "user:alice", attributes={"k": {1: "v"}})]
        with pytest.raises(AlertColumnsCodecError):
            encode_alert_columns(pack_alert_columns(alerts))

    def test_surrogate_in_string_field(self):
        columns = pack_alert_columns([Alert(1.0, "alert_a", "user:alice")])
        bad = (columns[0], ("alert_\ud800",)) + tuple(columns[2:])
        with pytest.raises(AlertColumnsCodecError):
            encode_alert_columns(bad)

    def test_bad_magic_rejected_on_decode(self):
        payload = encode_alert_columns(pack_alert_columns([]))
        with pytest.raises(ValueError):
            decode_alert_columns(b"XXXX" + payload[4:])

    def test_trailing_bytes_rejected_on_decode(self):
        payload = encode_alert_columns(pack_alert_columns([]))
        with pytest.raises(ValueError):
            decode_alert_columns(payload + b"\x00")


class TestShardRing:
    def test_exact_capacity_write_fills_the_ring(self):
        ring = ShardRing.create(capacity=64)
        try:
            offset = ring.write(b"a" * 64)
            assert offset == 0
            assert ring.view(0, 64) == b"a" * 64
            assert ring.write(b"b") is None  # full: every byte in flight
            ring.release(0, 64)
            assert ring.write(b"b" * 64) == 0  # reusable after release
        finally:
            ring.close()

    def test_wraparound_at_the_boundary(self):
        ring = ShardRing.create(capacity=64)
        try:
            assert ring.write(b"a" * 40) == 0
            assert ring.write(b"b" * 24) == 40  # exact fit at the end
            ring.release(0, 40)
            # Head sits at 64 == capacity; the next write must wrap to
            # offset 0, which region (40, 24) does not overlap.
            assert ring.write(b"c" * 40) == 0
            assert ring.view(40, 24) == b"b" * 24  # in-flight survived
            assert ring.view(0, 40) == b"c" * 40
            # 25 bytes would land on [40, 65) head-side and overlap
            # (0, 40) after wrapping: unplaceable -> fallback.
            assert ring.write(b"d" * 25) is None
        finally:
            ring.close()

    def test_oversized_payload_forces_fallback(self):
        ring = ShardRing.create(capacity=64)
        try:
            assert ring.write(b"x" * 65) is None
            assert ring.inflight_regions == 0
        finally:
            ring.close()

    def test_release_is_fifo_strict(self):
        ring = ShardRing.create(capacity=64)
        try:
            ring.write(b"a" * 8)
            ring.write(b"b" * 8)
            with pytest.raises(ValueError):
                ring.release(8, 8)  # second region first: rejected
            ring.release(0, 8)
            ring.release(8, 8)
            assert ring.inflight_regions == 0
        finally:
            ring.close()

    def test_attach_sees_owner_writes(self):
        ring = ShardRing.create(capacity=64)
        try:
            ring.write(b"payload!")
            reader = ShardRing.attach(ring.name)
            try:
                assert reader.view(0, 8) == b"payload!"
                with pytest.raises(ValueError):
                    reader.write(b"nope")  # reader side must not write
            finally:
                reader.close()
        finally:
            ring.close()

    def test_segment_name_carries_the_leak_hunting_prefix(self):
        ring = ShardRing.create(capacity=64)
        try:
            assert ring.name.startswith(SEGMENT_PREFIX)
        finally:
            ring.close()

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=48), max_size=24))
    def test_write_release_never_corrupts_inflight_payloads(self, lengths):
        """Under arbitrary write/release interleaving (bounded depth 3),
        every in-flight payload reads back exactly as written."""
        ring = ShardRing.create(capacity=64)
        inflight: list[tuple[int, int, bytes]] = []
        try:
            for index, length in enumerate(lengths):
                while len(inflight) >= 3:
                    offset, size, _ = inflight.pop(0)
                    ring.release(offset, size)
                payload = bytes([index % 251 + 1]) * length
                offset = ring.write(payload)
                if offset is None:
                    continue  # fallback signalled; ring state unchanged
                inflight.append((offset, length, payload))
                for o, s, expected in inflight:
                    assert ring.view(o, s) == expected
            assert ring.inflight_regions == len(inflight)
        finally:
            ring.close()


class _LeakPoisonDetector:
    """Picklable detector that raises on a chosen alert name."""

    def __init__(self, poison_name: str = "alert_outbound_c2") -> None:
        self.poison_name = poison_name
        self._detections: list = []

    @property
    def detections(self) -> list:
        return list(self._detections)

    def observe(self, alert):
        if alert.name == self.poison_name:
            raise ValueError(f"poisoned alert: {alert.name}")
        return None

    def observe_batch(self, alerts):
        found = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                found.append(detection)
        return found

    def reset(self) -> None:
        self._detections.clear()

    def reset_entity(self, entity: str) -> None:
        pass

    def clone(self) -> "_LeakPoisonDetector":
        return _LeakPoisonDetector(self.poison_name)


class _LeakSleepingDetector(_LeakPoisonDetector):
    """Wedges instead of raising -- forces close() escalation."""

    def observe(self, alert):
        if alert.name == self.poison_name:
            import time

            time.sleep(60.0)
        return None

    def clone(self) -> "_LeakSleepingDetector":
        return _LeakSleepingDetector(self.poison_name)


def _ring_segments_on_disk() -> set:
    import os

    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except OSError:  # pragma: no cover - non-POSIX /dev/shm layout
        return set()


def _benign(count: int) -> list[Alert]:
    return [
        Alert(float(i), "alert_login_normal", f"user:u{i % 4}") for i in range(count)
    ]


class TestLifecycleLeakHunting:
    """Every pool lifecycle path must unlink its rings.

    The autouse ``no_leaked_ring_segments`` fixture (tests/conftest.py)
    double-checks every test in the suite; these tests drive each
    lifecycle path explicitly and assert the segments created by *this*
    pool are gone from ``/dev/shm`` the moment the path completes.
    """

    def _shm_pool(self, factory=None, **kwargs):
        from repro.testbed import ShardedDetectorPool

        kwargs.setdefault("n_shards", 2)
        kwargs.setdefault("backend", "process")
        kwargs.setdefault("transport", "shm")
        kwargs.setdefault("max_inflight", 2)
        return ShardedDetectorPool(factory or _LeakPoisonDetector, **kwargs)

    def _ring_names(self, pool) -> set:
        return {ring.name for ring in pool._rings}

    def test_close_unlinks_every_ring(self):
        pool = self._shm_pool()
        names = self._ring_names(pool)
        assert len(names) == 2
        assert names <= _ring_segments_on_disk()
        pool.observe_batch(_benign(8))
        pool.close()
        assert not names & _ring_segments_on_disk()

    def test_escalated_close_still_unlinks(self):
        pool = self._shm_pool(lambda: _LeakSleepingDetector("alert_outbound_c2"))
        names = self._ring_names(pool)
        pool.submit_batch(
            _benign(4) + [Alert(99.0, "alert_outbound_c2", "host:h0")]
        )
        result = pool.close(timeout=0.3)
        assert not result.clean  # the wedged worker was escalated ...
        assert not names & _ring_segments_on_disk()  # ... rings still unlinked

    def test_reshard_unlinks_old_rings_and_builds_new(self):
        from repro.core import AttackTagger
        from repro.testbed import ShardedDetectorPool

        pool = ShardedDetectorPool.from_template(
            AttackTagger(),
            n_shards=2,
            backend="process",
            transport="shm",
            max_inflight=2,
            restart_policy="restore",
        )
        pool.observe_batch(_benign(8))
        old_names = self._ring_names(pool)
        pool.reshard(3)
        new_names = self._ring_names(pool)
        assert len(new_names) == 3
        assert not old_names & new_names
        assert not old_names & _ring_segments_on_disk()
        pool.observe_batch(_benign(8))
        pool.close()
        assert not new_names & _ring_segments_on_disk()

    def test_crash_and_heal_does_not_leak(self):
        pool = self._shm_pool(restart_policy="restore")
        pool.observe_batch(_benign(8))
        names = self._ring_names(pool)
        pool._workers[0].process.kill()
        pool._workers[0].process.join(timeout=5.0)
        pool.observe_batch(_benign(8))  # heals through the dead shard
        assert [e for e in pool.recovery_log.for_shard(0) if e.healed]
        assert self._ring_names(pool) == names  # heal re-attaches, no churn
        pool.close()
        assert not names & _ring_segments_on_disk()

    def test_pipeline_exit_on_error_unlinks(self):
        from repro.testbed import ShardWorkerError, TestbedPipeline

        poisoned = _benign(4) + [Alert(99.0, "alert_outbound_c2", "host:h0")]
        names: set = set()
        with pytest.raises(ShardWorkerError):
            with TestbedPipeline(
                detectors={"poison": _LeakPoisonDetector()},
                n_shards=2,
                shard_backend="process",
                transport="shm",
                max_inflight=2,
            ) as pipeline:
                names = self._ring_names(pipeline.detector_pools["poison"])
                assert len(names) == 2
                pipeline.ingest_alerts(poisoned)
        assert not names & _ring_segments_on_disk()


class TestPoolFallback:
    def test_tiny_ring_forces_pickle_fallback_bit_identically(self):
        """A ring too small for any batch must not change results."""
        from repro.core import AttackTagger
        from repro.testbed import ShardedDetectorPool

        alerts = [
            Alert(float(i), "alert_port_scan", f"user:u{i % 5}", source_ip="10.0.0.9")
            for i in range(20)
        ]
        results = {}
        for capacity in (DEFAULT_RING_CAPACITY, 64):
            pool = ShardedDetectorPool.from_template(
                AttackTagger(),
                n_shards=2,
                backend="process",
                transport="shm",
                max_inflight=2,
                ring_capacity=capacity,
            )
            try:
                detections = list(pool.observe_batch(alerts[:10]))
                detections.extend(pool.observe_batch(alerts[10:]))
                results[capacity] = (detections, pool.shm_batches, pool.shm_fallbacks)
            finally:
                pool.close()
        full_detections, full_shm, full_fallbacks = results[DEFAULT_RING_CAPACITY]
        tiny_detections, tiny_shm, tiny_fallbacks = results[64]
        assert full_shm > 0 and full_fallbacks == 0
        assert tiny_shm == 0 and tiny_fallbacks > 0
        assert tiny_detections == full_detections
