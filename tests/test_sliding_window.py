"""Equivalence + unit suite for the amortised sliding-window decode.

The two-stack eviction path must be a pure performance optimisation:
for every stream, every window size, and every eviction/rescan/fallback
corner, the streaming engine must emit detections that are
*bit-identical* (exact ``==`` on confidences and trajectories) to the
seed re-decode path (``engine="naive"``) and to the previous
rebuild-on-slide path (``engine="rebuild"``).  These tests hammer that
claim with randomized eviction-heavy streams at tiny windows, plus
deterministic probes of the two-stack boundary fallback, the
pattern-cursor rescan logic, and the satellite optimisations (deque
window trim, shard-routing memo, sort-free bonus ordering).
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.core import AttackTagger, SlidingProductWindow, default_parameters
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.attack_tagger import PatternSpec
from repro.core.factor_graph import (
    _logsumexp,
    chain_step_matrix,
    logsumexp_vecmat,
    maxplus_vecmat,
)
from repro.core.states import NUM_STATES, HiddenState
from repro.core.streaming import StreamingDecoder, WeightedPattern
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed.sharding import ShardedDetectorPool, shard_of

ALL_NAMES = [spec.name for spec in DEFAULT_VOCABULARY]


def _random_stream(rng, length, entity="entity:x"):
    return [
        Alert(float(i), ALL_NAMES[rng.integers(len(ALL_NAMES))], entity)
        for i in range(length)
    ]


def _taggers(max_window, **kwargs):
    kwargs.setdefault("patterns", list(DEFAULT_CATALOGUE))
    return {
        engine: AttackTagger(max_window=max_window, engine=engine, **kwargs)
        for engine in ("streaming", "rebuild", "naive")
    }


def _assert_identical_detection(ds, dn):
    assert (ds is None) == (dn is None)
    if ds is None:
        return
    assert ds.alert_index == dn.alert_index
    assert ds.state is dn.state
    assert ds.confidence == dn.confidence  # bit-identical, not approx
    assert ds.matched_patterns == dn.matched_patterns
    assert ds.state_trajectory == dn.state_trajectory


class TestSlidingProductWindow:
    """Unit checks of the two-stack aggregator against direct folds."""

    def _reference(self, head, matrices):
        score, forward = head, head
        for matrix in matrices:
            score = maxplus_vecmat(score, matrix)
            forward = logsumexp_vecmat(forward, matrix)
        return score, forward

    @pytest.mark.parametrize("seed", range(3))
    def test_random_push_pop_matches_direct_fold(self, seed):
        rng = np.random.default_rng(seed)
        window = SlidingProductWindow()
        live: deque = deque()
        next_index = 0
        head = rng.normal(size=NUM_STATES)
        for _ in range(200):
            if live and rng.random() < 0.45:
                assert window.pop_front() == live.popleft()[0]
            else:
                matrix = rng.normal(size=(NUM_STATES, NUM_STATES))
                window.push(next_index, matrix)
                live.append((next_index, matrix))
                next_index += 1
            assert len(window) == len(live)
            score, forward = window.apply(head)
            ref_score, ref_forward = self._reference(head, [m for _, m in live])
            np.testing.assert_allclose(score, ref_score, rtol=0, atol=1e-9)
            np.testing.assert_allclose(forward, ref_forward, rtol=0, atol=1e-9)

    def test_replace_patches_both_regions(self):
        rng = np.random.default_rng(7)
        window = SlidingProductWindow()
        matrices = [rng.normal(size=(NUM_STATES, NUM_STATES)) for _ in range(6)]
        for index, matrix in enumerate(matrices):
            window.push(index, matrix)
        window.pop_front()  # flips everything into the front stack
        # Front-region edit: suffixes are partially recomputed in place.
        front_replacement = rng.normal(size=(NUM_STATES, NUM_STATES))
        assert window.replace(3, front_replacement)
        matrices[3] = front_replacement
        # Back-region edit: prefixes are partially refolded in place.
        window.push(6, rng.normal(size=(NUM_STATES, NUM_STATES)))
        back_replacement = rng.normal(size=(NUM_STATES, NUM_STATES))
        assert window.replace(6, back_replacement)
        # An index the structure does not hold is refused (the caller's
        # cue to fall back to the exact rebuild).
        assert not window.replace(0, rng.normal(size=(NUM_STATES, NUM_STATES)))
        assert not window.replace(7, rng.normal(size=(NUM_STATES, NUM_STATES)))
        head = rng.normal(size=NUM_STATES)
        score, forward = window.apply(head)
        ref_score, ref_forward = self._reference(head, matrices[1:] + [back_replacement])
        np.testing.assert_allclose(score, ref_score, rtol=0, atol=1e-9)
        np.testing.assert_allclose(forward, ref_forward, rtol=0, atol=1e-9)

    def test_rebuild_and_shift(self):
        rng = np.random.default_rng(11)
        window = SlidingProductWindow()
        matrices = [rng.normal(size=(NUM_STATES, NUM_STATES)) for _ in range(5)]
        window.rebuild(range(10, 15), matrices)
        window.shift(10)
        assert window.pop_front() == 0
        head = rng.normal(size=NUM_STATES)
        score, _ = window.apply(head)
        ref_score, _ = self._reference(head, matrices[1:])
        np.testing.assert_allclose(score, ref_score, rtol=0, atol=1e-9)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            SlidingProductWindow().pop_front()


class TestEvictionEquivalence:
    """Randomized eviction-heavy streams: streaming == rebuild == naive."""

    @pytest.mark.parametrize("max_window", [2, 3, 5, 8])
    @pytest.mark.parametrize("seed", range(3))
    def test_bit_identical_detections_and_inference(self, max_window, seed):
        rng = np.random.default_rng(1000 * max_window + seed)
        stream = _random_stream(rng, 6 * max_window + 5)
        taggers = _taggers(max_window, detection_threshold=0.7)
        for alert in stream:
            results = {name: tagger.observe(alert) for name, tagger in taggers.items()}
            _assert_identical_detection(results["streaming"], results["naive"])
            _assert_identical_detection(results["rebuild"], results["naive"])
            states = {}
            marginals = {}
            for name, tagger in taggers.items():
                s, m, matched = tagger.infer("entity:x")
                states[name], marginals[name] = s, m
                assert matched == taggers["naive"].infer("entity:x")[2] or name == "naive"
            assert np.array_equal(states["streaming"], states["naive"])
            assert np.array_equal(states["rebuild"], states["naive"])
            assert np.array_equal(marginals["streaming"], marginals["naive"])
            assert np.array_equal(marginals["rebuild"], marginals["naive"])

    @pytest.mark.parametrize("max_window", [3, 5])
    def test_long_stream_with_compaction(self, max_window):
        """Hundreds of evictions force buffer compaction several times."""
        rng = np.random.default_rng(max_window)
        stream = _random_stream(rng, 220)
        taggers = _taggers(max_window, detection_threshold=0.999)
        for alert in stream:
            ds = taggers["streaming"].observe(alert)
            dn = taggers["naive"].observe(alert)
            _assert_identical_detection(ds, dn)
        s_states, s_marg, s_matched = taggers["streaming"].infer("entity:x")
        n_states, n_marg, n_matched = taggers["naive"].infer("entity:x")
        assert np.array_equal(s_states, n_states)
        assert np.array_equal(s_marg, n_marg)
        assert s_matched == n_matched
        decoder = taggers["streaming"].track("entity:x").decoder
        # The live decoder really took the amortised path (and compacted:
        # its buffers must not have grown with the 220-alert stream).
        assert decoder is not None and decoder.windowed
        assert decoder._base.shape[0] <= 8 * max_window + 16

    def test_windowed_unary_table_matches_naive_build(self):
        rng = np.random.default_rng(42)
        taggers = _taggers(4, detection_threshold=0.999)
        streaming, naive = taggers["streaming"], taggers["naive"]
        for alert in _random_stream(rng, 37):
            streaming.observe(alert)
            naive.observe(alert)
        decoder = streaming.track("entity:x").decoder
        assert decoder.windowed
        names = [a.name for a in naive.track("entity:x").alerts]
        unary, _ = naive._build_unary(names)
        np.testing.assert_array_equal(decoder.unary_table(), unary)

    def test_detection_trace_equivalence_under_eviction(self):
        from repro.core.sequences import AlertSequence

        rng = np.random.default_rng(5)
        names = [ALL_NAMES[rng.integers(len(ALL_NAMES))] for _ in range(40)]
        sequence = AlertSequence.from_names(names)
        taggers = _taggers(6)
        traces = {
            name: tagger.detection_trace(sequence) for name, tagger in taggers.items()
        }
        for engine in ("streaming", "rebuild"):
            assert np.array_equal(
                traces[engine].malicious_probability,
                traces["naive"].malicious_probability,
            )
            assert np.array_equal(
                traces[engine].map_is_malicious, traces["naive"].map_is_malicious
            )


class TestEvictionCursorRescans:
    """Deterministic probes of the eviction-aware pattern-cursor logic."""

    FILLER = "alert_login_normal"
    SYM_A = "alert_port_scan"
    SYM_B = "alert_ssh_key_enumeration"

    def _pair(self, pattern_names, max_window):
        patterns = [PatternSpec(name="SX", names=tuple(pattern_names))]
        common = dict(
            patterns=patterns, max_window=max_window, detection_threshold=0.999
        )
        return (
            AttackTagger(engine="streaming", **common),
            AttackTagger(engine="naive", **common),
        )

    def _drive(self, streaming, naive, names):
        for i, name in enumerate(names):
            alert = Alert(float(i), name, "entity:x")
            _assert_identical_detection(streaming.observe(alert), naive.observe(alert))
            s_states, s_marg, s_matched = streaming.infer("entity:x")
            n_states, n_marg, n_matched = naive.infer("entity:x")
            assert np.array_equal(s_states, n_states), i
            assert np.array_equal(s_marg, n_marg), i
            assert s_matched == n_matched, i

    def test_evicting_first_matched_symbol_rescans(self):
        """Dropping a match's first step must shrink/relocate the match."""
        names = [self.SYM_A] + [self.FILLER] * 6 + [self.SYM_B] + [self.FILLER] * 6
        self._drive(*self._pair([self.SYM_A, self.SYM_B], 4), names)

    def test_duplicate_symbol_relocates_match_start(self):
        """Greedy match survives eviction by sliding onto a later duplicate."""
        names = (
            [self.SYM_A, self.SYM_A, self.SYM_B]
            + [self.FILLER] * 5
            + [self.SYM_B]
            + [self.FILLER] * 5
        )
        self._drive(*self._pair([self.SYM_A, self.SYM_B], 5), names)

    def test_completed_pattern_uncompletes_on_eviction(self):
        """A fully matched pattern loses the match as its steps evict."""
        streaming, naive = self._pair([self.SYM_A, self.SYM_B], 3)
        names = [self.SYM_A, self.SYM_B] + [self.FILLER] * 6
        self._drive(streaming, naive, names)
        assert streaming.infer("entity:x")[2] == []

    def test_bonus_relocation_across_two_stack_boundary(self):
        """Advancing a match whose bonus sits in the *front* region.

        The window is arranged so the partially matched symbol's step
        has been flipped into the front stack when the second symbol
        arrives; the partial front-suffix patch (and the simultaneous
        back-region insertion of the new bonus) must keep everything
        bit-identical across the two-stack boundary.
        """
        window = 8
        names = [self.FILLER] * 6 + [self.SYM_A, self.FILLER]  # fills the window
        names += [self.FILLER] * 4  # four evictions: SYM_A's step enters the front
        names += [self.SYM_B]  # advance relocates the bonus across the boundary
        names += [self.FILLER] * 10  # and keep evicting past both steps
        self._drive(*self._pair([self.SYM_A, self.SYM_B], window), names)


class TestBonusOrderingWithoutSort:
    """`_refresh_unary` must sum same-step bonuses in catalogue order."""

    def test_out_of_order_waiting_lists_still_sum_in_catalogue_order(self):
        # P0 waits on Y after X, P1 waits on Y after Z.  Feeding Z first
        # queues P1 ahead of P0 in the waiting list for Y, so a sort-free
        # insertion must still fold both step-2 bonuses in P0-then-P1
        # (catalogue) order to stay bit-identical with the naive build.
        x, y, z = "alert_port_scan", "alert_ssh_key_enumeration", "alert_vuln_scan"
        patterns = [
            PatternSpec(name="P0", names=(x, y)),
            PatternSpec(name="P1", names=(z, y)),
        ]
        parameters = default_parameters()
        decoder = StreamingDecoder(
            parameters,
            [WeightedPattern(p.name, p.names, 2.0) for p in patterns],
        )
        naive = AttackTagger(parameters, patterns=patterns, engine="naive")
        names = [z, x, y]
        for name in names:
            decoder.append(name)
        unary, _ = naive._build_unary(names)
        np.testing.assert_array_equal(decoder.unary_table(), unary)

    def test_eviction_rescan_inserts_bonus_in_order(self):
        x, y, z = "alert_port_scan", "alert_ssh_key_enumeration", "alert_vuln_scan"
        patterns = [
            PatternSpec(name="P0", names=(x, y)),
            PatternSpec(name="P1", names=(z, y)),
            PatternSpec(name="P2", names=(x, z)),
        ]
        common = dict(patterns=patterns, max_window=4, detection_threshold=0.999)
        streaming = AttackTagger(engine="streaming", **common)
        naive = AttackTagger(engine="naive", **common)
        rng = np.random.default_rng(3)
        pool = [x, y, z, "alert_login_normal"]
        names = [pool[rng.integers(len(pool))] for _ in range(40)]
        for i, name in enumerate(names):
            alert = Alert(float(i), name, "entity:x")
            _assert_identical_detection(streaming.observe(alert), naive.observe(alert))
            s_states, s_marg, _ = streaming.infer("entity:x")
            n_states, n_marg, _ = naive.infer("entity:x")
            assert np.array_equal(s_states, n_states), i
            assert np.array_equal(s_marg, n_marg), i


class TestSatelliteOptimisations:
    def test_track_window_trim_is_constant_time_deque(self):
        tagger = AttackTagger(max_window=4, detection_threshold=0.999)
        for i in range(12):
            tagger.observe(Alert(float(i), "alert_login_normal", "user:a"))
        track = tagger.track("user:a")
        assert isinstance(track.alerts, deque)
        assert track.alerts.maxlen == 4
        assert len(track.alerts) == 4
        assert [a.timestamp for a in track.alerts] == [8.0, 9.0, 10.0, 11.0]

    def test_detected_fast_path_keeps_trimming(self):
        tagger = AttackTagger(max_window=3)
        track = tagger.track("user:a")
        track.detected = object()  # sentinel: fast path only records
        for i in range(9):
            tagger.observe(Alert(float(i), "alert_login_normal", "user:a"))
        assert len(track.alerts) == 3

    def test_shard_routing_memo_matches_source_of_truth(self):
        pool = ShardedDetectorPool.from_template(AttackTagger(), n_shards=5)
        alerts = [
            Alert(float(i), "alert_login_normal", f"user:{i % 7}") for i in range(50)
        ]
        pool.observe_batch(alerts)
        assert pool._shard_cache  # memo populated
        for entity, shard in pool._shard_cache.items():
            assert shard == shard_of(entity, pool.n_shards)
        assert pool.shard_of("user:0") == shard_of("user:0", 5)
        pool.close()

    def test_hard_zero_observation_does_not_suppress_detections(self):
        """-inf log potentials must defer to the exact decode, not NaN out.

        The lean semiring helpers assume finite inputs; a user-supplied
        parameter table with a hard zero turns the window aggregate into
        NaN, and ``may_fire`` must then consult the exact decode instead
        of silently answering "cannot fire".
        """
        parameters = default_parameters()
        parameters.observation_log[0, 0] = -np.inf
        rng = np.random.default_rng(12)
        pool = [ALL_NAMES[0], ALL_NAMES[7], ALL_NAMES[16], ALL_NAMES[18]]
        common = dict(patterns=list(DEFAULT_CATALOGUE), max_window=6)
        streaming = AttackTagger(parameters, engine="streaming", **common)
        naive = AttackTagger(parameters, engine="naive", **common)
        fired = 0
        for i in range(40):
            name = pool[rng.integers(len(pool))]
            alert = Alert(float(i), name, "entity:x")
            ds, dn = streaming.observe(alert), naive.observe(alert)
            _assert_identical_detection(ds, dn)
            fired += ds is not None
        assert fired == 1  # the stream must actually cross the threshold

    def test_windowed_final_marginal_is_mutation_safe(self):
        """Read-outs must hand back copies, never the decode cache."""
        rng = np.random.default_rng(8)
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE), max_window=5, detection_threshold=0.999
        )
        for alert in _random_stream(rng, 30):
            tagger.observe(alert)
        decoder = tagger.track("entity:x").decoder
        assert decoder.windowed
        first = decoder.final_marginal()
        expected = first.copy()
        first[:] = 0.0
        np.testing.assert_array_equal(decoder.final_marginal(), expected)
        path = decoder.map_path()
        path[:] = -1
        assert decoder.map_path()[0] != -1 or (decoder.map_path() != -1).any()

    def test_window_scores_match_exact_decode_within_guard(self):
        """Aggregate decisions track the exact decode to ~reassociation error."""
        rng = np.random.default_rng(9)
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE), max_window=6, detection_threshold=0.999
        )
        for alert in _random_stream(rng, 50):
            tagger.observe(alert)
        decoder = tagger.track("entity:x").decoder
        assert decoder.windowed
        score, forward = decoder.window_scores()
        exact_prob = decoder.final_malicious_probability()
        aggregate_prob = float(
            np.exp(forward[int(HiddenState.MALICIOUS)] - _logsumexp(forward))
        )
        assert abs(aggregate_prob - exact_prob) < 1e-9
        unary = decoder.unary_table()
        ref = unary[0]
        for row in unary[1:]:
            ref = maxplus_vecmat(ref, chain_step_matrix(decoder._pairwise, row))
        np.testing.assert_allclose(score, ref, rtol=0, atol=1e-9)
