"""Fixture suite for ``repro.staticcheck``.

Each rule gets at least one minimal *flagged* and one *not-flagged*
snippet (the positive proves the rule fires, the negative pins its
escape hatches), plus framework coverage: suppression semantics,
fingerprint stability under line drift, baseline diffing, the CLI
gate, and a self-run over ``src/`` asserting the tree stays clean
beyond the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.staticcheck import (
    Baseline,
    Finding,
    all_rules,
    fingerprint_findings,
    get_rule,
    parse_suppressions,
    scan_source,
)
from repro.staticcheck.cli import main as cli_main
from repro.staticcheck.rules.pickle_safety import CHECKPOINTED_CLASS_NAMES

REPO_ROOT = Path(__file__).resolve().parents[1]


def check(source: str, relpath: str, *rules: str) -> list[Finding]:
    """Active findings for one snippet, optionally restricted to rules."""
    selected = [get_rule(r) for r in rules] if rules else None
    return scan_source(relpath, textwrap.dedent(source), rules=selected).findings


def rules_hit(findings) -> set:
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminismRule:
    def test_flags_unseeded_rng_wall_clock_and_set_iteration(self):
        findings = check(
            """
            import random
            import time
            import numpy as np

            def sample():
                rng = np.random.default_rng()
                legacy = np.random.shuffle([1, 2])
                stamp = time.time()
                toss = random.random()
                names = set(["b", "a"])
                return [n for n in names], rng, legacy, stamp, toss
            """,
            "core/mod.py",
            "determinism",
        )
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 5
        assert "without a seed" in messages
        assert "global-state sampler" in messages
        assert "wall-clock read" in messages
        assert "process-seeded global RNG" in messages
        assert "hash order" in messages
        assert all(f.rule == "determinism" for f in findings)

    def test_allows_seeded_rng_perf_counter_and_sorted_sets(self):
        findings = check(
            """
            import time
            import numpy as np

            def sample(seed, now):
                rng = np.random.default_rng(seed)
                started = time.perf_counter()
                names = set(["b", "a"])
                ordered = sorted(names)
                hit = "a" in names
                count = len(names)
                return rng, started, ordered, hit, count, now
            """,
            "core/mod.py",
            "determinism",
        )
        assert findings == []

    def test_tracks_set_valued_attributes_and_members(self):
        findings = check(
            """
            class Track:
                def __init__(self):
                    self._seen = set()

                def names(self):
                    return frozenset(self._seen)

            def leak(track):
                return list(track.names)
            """,
            "testbed/mod.py",
            "determinism",
        )
        assert len(findings) == 1
        assert "hash order" in findings[0].message

    def test_scoped_to_deterministic_paths(self):
        source = """
        import time

        def sample():
            return time.time()
        """
        assert check(source, "core/mod.py", "determinism")
        assert check(source, "viz/mod.py", "determinism") == []


# ---------------------------------------------------------------------------
# pickle-safety
# ---------------------------------------------------------------------------
class TestPickleSafetyRule:
    def test_flags_undropped_lock_file_and_lambda(self):
        findings = check(
            """
            import threading

            class Snapshotter:
                def __init__(self, path):
                    self._lock = threading.Lock()
                    self._log = open(path, "a")
                    self._thunk = lambda x: x + 1

                def __getstate__(self):
                    state = self.__dict__.copy()
                    state.pop("_lock")
                    return state
            """,
            "core/mod.py",
            "pickle-safety",
        )
        assert len(findings) == 2
        assert any("_log" in f.message for f in findings)
        assert any("_thunk" in f.message for f in findings)
        assert all("_lock" not in f.message for f in findings)

    def test_flags_known_checkpointed_class_without_getstate(self):
        findings = check(
            """
            class AttackTagger:
                def __init__(self):
                    self._rebuild = lambda: None
            """,
            "core/mod.py",
            "pickle-safety",
        )
        assert len(findings) == 1
        assert "AttackTagger._rebuild" in findings[0].message

    def test_allows_dropped_attrs_and_unpickled_classes(self):
        findings = check(
            """
            import threading

            class Snapshotter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._gen = (x for x in range(3))

                def __getstate__(self):
                    state = self.__dict__.copy()
                    del state["_lock"]
                    state["_gen"] = None
                    return state

            class EphemeralWorker:  # never pickled: no __getstate__, not registered
                def __init__(self):
                    self._lock = threading.Lock()

            class SelfReducing:
                def __init__(self):
                    self._lock = threading.Lock()

                def __reduce__(self):
                    return (SelfReducing, ())
            """,
            "core/mod.py",
            "pickle-safety",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# asyncio-blocking
# ---------------------------------------------------------------------------
class TestAsyncioBlockingRule:
    def test_flags_sleep_sync_io_and_pipeline_touch(self):
        findings = check(
            """
            import time

            async def handler():
                time.sleep(1)

            async def reader(sock):
                return sock.recv(10)

            class Svc:
                async def _dispatch(self):
                    return self.pipeline.submit_alerts([])
            """,
            "service/mod.py",
            "asyncio-blocking",
        )
        assert len(findings) == 3
        messages = "\n".join(f.message for f in findings)
        assert "blocking call time.sleep()" in messages
        assert ".recv()" in messages
        assert "only the consumer owns the pipeline" in messages

    def test_allows_awaited_io_consumer_and_nested_sync_defs(self):
        findings = check(
            """
            import asyncio
            import time

            async def handler():
                await asyncio.sleep(1)

            class Svc:
                async def _consume(self):
                    self.pipeline.submit_alerts([])

                async def stream(self, reader):
                    return await reader.readline()

                def sync_helper(self):
                    time.sleep(0.1)

            async def spawner():
                def blocking():
                    time.sleep(1)
                return await asyncio.to_thread(blocking)
            """,
            "service/mod.py",
            "asyncio-blocking",
        )
        assert findings == []

    def test_scoped_to_service(self):
        source = """
        import time

        async def handler():
            time.sleep(1)
        """
        assert check(source, "service/mod.py", "asyncio-blocking")
        assert check(source, "core/mod.py", "asyncio-blocking") == []


# ---------------------------------------------------------------------------
# shard-boundary
# ---------------------------------------------------------------------------
class TestShardBoundaryRule:
    def test_flags_lambda_closure_and_local_def(self):
        findings = check(
            """
            import multiprocessing

            from repro.testbed.sharding import ShardedDetectorPool

            def build(detector):
                factory = lambda: detector.clone()
                pool = ShardedDetectorPool(factory, n_shards=2)
                direct = ShardedDetectorPool(lambda: detector.clone())

                def local_factory():
                    return detector.clone()

                proc = multiprocessing.Process(target=local_factory)
                return pool, direct, proc
            """,
            "testbed/mod.py",
            "shard-boundary",
        )
        assert len(findings) == 3
        messages = "\n".join(f.message for f in findings)
        assert "lambda" in messages
        assert "nested in build()" in messages

    def test_allows_module_level_factories(self):
        findings = check(
            """
            from repro.testbed.sharding import DetectorTemplate, ShardedDetectorPool

            def module_factory():
                return object()

            def build(detector):
                pool = ShardedDetectorPool(DetectorTemplate(detector), n_shards=2)
                named = ShardedDetectorPool(module_factory)
                return pool, named
            """,
            "testbed/mod.py",
            "shard-boundary",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# semiring-discipline
# ---------------------------------------------------------------------------
class TestSemiringDisciplineRule:
    def test_flags_contaminated_accumulator_and_nested_mix(self):
        findings = check(
            """
            from repro.core.factor_graph import logsumexp_matmul, maxplus_matmul

            def contaminated(a, b, c):
                acc = maxplus_matmul(a, b)
                acc = logsumexp_matmul(acc, c)
                return acc

            def nested(a, b, c):
                return logsumexp_matmul(maxplus_matmul(a, b), c)
            """,
            "core/mod.py",
            "semiring-discipline",
        )
        assert len(findings) == 2
        messages = "\n".join(f.message for f in findings)
        assert "receives both max-plus and log-sum-exp" in messages
        assert "nests a" in messages

    def test_allows_dual_track_and_semiring_parameter(self):
        findings = check(
            """
            from repro.core.factor_graph import logsumexp_matmul, maxplus_matmul

            def dual_track(a, b):
                back_max = [maxplus_matmul(a, b)]
                back_lse = [logsumexp_matmul(a, b)]
                back_max.append(maxplus_matmul(a, b))
                back_lse.append(logsumexp_matmul(a, b))
                return back_max, back_lse

            def generic(a, b, semiring):
                acc = maxplus_matmul(a, b)
                acc = logsumexp_matmul(acc, b)
                return acc
            """,
            "core/mod.py",
            "semiring-discipline",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# shm-lifecycle
# ---------------------------------------------------------------------------
class TestShmLifecycleRule:
    def test_flags_owner_without_close_path_unlink(self):
        findings = check(
            """
            from multiprocessing import shared_memory

            class LeakyRing:
                def __init__(self):
                    self._segment = shared_memory.SharedMemory(
                        name="x", create=True, size=64
                    )

                def close(self):
                    self._segment.close()  # unmap only: still linked!

            class UnlinkOffThePath:
                def __init__(self):
                    self._segment = shared_memory.SharedMemory(
                        name="y", create=True, size=64
                    )

                def poke(self):
                    self._segment.unlink()  # not a close-path method
            """,
            "testbed/mod.py",
            "shm-lifecycle",
        )
        assert len(findings) == 2
        assert all(f.rule == "shm-lifecycle" for f in findings)
        assert "leaks in /dev/shm" in findings[0].message

    def test_allows_owner_with_unlink_and_reader_attach(self):
        findings = check(
            """
            from multiprocessing.shared_memory import SharedMemory

            class OwnedRing:
                def __init__(self):
                    self._segment = SharedMemory(name="x", create=True, size=64)

                def close(self):
                    self._segment.close()
                    self._segment.unlink()

            class ReaderRing:
                def __init__(self, name):
                    self._segment = SharedMemory(name=name)  # attach only

                def close(self):
                    self._segment.close()  # readers must NOT unlink
            """,
            "testbed/mod.py",
            "shm-lifecycle",
        )
        assert findings == []

    def test_module_level_creation_audits_the_module(self):
        flagged = check(
            """
            from multiprocessing.shared_memory import SharedMemory

            def build(name):
                return SharedMemory(name=name, create=True, size=64)
            """,
            "testbed/mod.py",
            "shm-lifecycle",
        )
        assert len(flagged) == 1
        clean = check(
            """
            from multiprocessing.shared_memory import SharedMemory

            def build(name):
                return SharedMemory(name=name, create=True, size=64)

            def teardown(segment):
                segment.close()
                segment.unlink()
            """,
            "testbed/mod.py",
            "shm-lifecycle",
        )
        assert clean == []

    def test_scoped_to_testbed(self):
        findings = check(
            """
            from multiprocessing.shared_memory import SharedMemory

            def build(name):
                return SharedMemory(name=name, create=True, size=64)
            """,
            "core/mod.py",
            "shm-lifecycle",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
class TestSuppressions:
    SOURCE = """
    import time

    def sample():
        a = time.time()  # staticcheck: disable=determinism -- pinned: display only
        # staticcheck: disable=determinism -- next-line form
        b = time.time()
        c = time.time()  # staticcheck: disable=determinism
        d = time.time()  # staticcheck: disable=pickle-safety -- wrong rule
        return a, b, c, d
    """

    def test_justified_suppressions_apply_bare_and_mismatched_do_not(self):
        result = scan_source(
            "core/mod.py", textwrap.dedent(self.SOURCE), rules=[get_rule("determinism")]
        )
        # a and b suppressed; c (bare) and d (wrong rule) stay active,
        # plus the hygiene finding for the bare suppression.
        assert len(result.suppressed) == 2
        by_rule = rules_hit(result.findings)
        assert by_rule == {"determinism", "suppression-hygiene"}
        determinism = [f for f in result.findings if f.rule == "determinism"]
        assert len(determinism) == 2
        assert result.suppressions_used == 2
        assert result.suppressions_bare == 1
        assert result.suppressions_unused == 1  # the wrong-rule one

    def test_parse_extracts_rules_and_reason(self):
        parsed = parse_suppressions(
            "x = 1  # staticcheck: disable=determinism,pickle-safety -- because\n"
        )
        assert len(parsed) == 1
        assert parsed[0].rules == frozenset({"determinism", "pickle-safety"})
        assert parsed[0].reason == "because"
        assert parsed[0].governed_line == 1

    def test_hash_inside_string_is_not_a_suppression(self):
        parsed = parse_suppressions(
            'x = "# staticcheck: disable=determinism -- not a comment"\n'
        )
        assert parsed == []

    def test_disable_all(self):
        source = """
        import time

        def sample():
            return time.time()  # staticcheck: disable=all -- fixture
        """
        assert check(source, "core/mod.py", "determinism") == []


# ---------------------------------------------------------------------------
# findings / baseline
# ---------------------------------------------------------------------------
class TestFingerprintsAndBaseline:
    SNIPPET = """
    import time

    def sample():
        return time.time()
    """

    def test_fingerprints_survive_line_drift(self):
        first = check(self.SNIPPET, "core/mod.py", "determinism")
        shifted = check("\n\n\n" + textwrap.dedent(self.SNIPPET), "core/mod.py", "determinism")
        assert first[0].line != shifted[0].line
        assert fingerprint_findings(first)[0][1] == fingerprint_findings(shifted)[0][1]

    def test_duplicate_findings_get_occurrence_indices(self):
        source = """
        import time

        def sample():
            return time.time(), time.time()
        """
        findings = check(source, "core/mod.py", "determinism")
        assert len(findings) == 2
        fingerprints = [fp for _, fp in fingerprint_findings(findings)]
        assert len(set(fingerprints)) == 2
        assert {fp.rsplit("#", 1)[1] for fp in fingerprints} == {"0", "1"}

    def test_diff_partitions_new_known_stale(self, tmp_path):
        old = check(self.SNIPPET, "core/mod.py", "determinism")
        baseline = Baseline.from_findings(old)
        path = tmp_path / "base.json"
        baseline.save(path.as_posix())
        reloaded = Baseline.load(path.as_posix())

        new_source = """
        import time

        def sample():
            return time.time()

        def extra():
            return time.time_ns()
        """
        diff = reloaded.diff(check(new_source, "core/mod.py", "determinism"))
        assert len(diff.known) == 1
        assert len(diff.new) == 1
        assert "time_ns" in diff.new[0].message
        assert diff.stale == []

        diff_fixed = reloaded.diff([])
        assert diff_fixed.new == [] and len(diff_fixed.stale) == 1


# ---------------------------------------------------------------------------
# CLI gate
# ---------------------------------------------------------------------------
class TestCli:
    BAD = "import time\n\n\ndef sample():\n    return time.time()\n"
    GOOD = "def sample(now):\n    return now\n"

    @pytest.fixture()
    def project(self, tmp_path, monkeypatch):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "mod.py").write_text(self.BAD)
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_fails_without_baseline_then_passes_after_write(self, project, capsys):
        assert cli_main(["core"]) == 1
        assert "determinism" in capsys.readouterr().out
        assert cli_main(["core", "--write-baseline"]) == 0
        assert cli_main(["core", "--check-baseline"]) == 0
        out = capsys.readouterr().out
        assert "no new findings" in out

    def test_new_violation_fails_the_gate_and_fix_goes_stale(self, project, capsys):
        cli_main(["core", "--write-baseline"])
        mod = project / "core" / "mod.py"
        mod.write_text(self.BAD + "\n\ndef extra():\n    return time.time_ns()\n")
        assert cli_main(["core", "--check-baseline"]) == 1
        assert "time_ns" in capsys.readouterr().out
        mod.write_text(self.GOOD)
        assert cli_main(["core", "--check-baseline"]) == 0
        assert "stale" in capsys.readouterr().out

    def test_check_baseline_requires_ledger(self, project, capsys):
        assert cli_main(["core", "--check-baseline"]) == 2
        assert "not found" in capsys.readouterr().out

    def test_stats_and_json_output(self, project, capsys):
        assert cli_main(["core", "--stats"]) == 1
        out = capsys.readouterr().out
        assert "files scanned" in out and "determinism" in out
        assert cli_main(["core", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] and payload["stats"]["files_scanned"] == 1

    def test_list_rules_catalogue(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out


# ---------------------------------------------------------------------------
# self-run: the tree stays clean beyond the committed baseline
# ---------------------------------------------------------------------------
class TestSelfRun:
    def test_src_tree_is_clean_against_committed_baseline(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert (REPO_ROOT / "staticcheck_baseline.json").exists()
        assert cli_main(["src", "--check-baseline", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "no new findings" in out

    def test_seeded_violation_in_service_coroutine_fails_gate(self, monkeypatch):
        """The acceptance probe: a time.sleep seeded into a server.py
        coroutine must surface as a *new* finding against the committed
        baseline (the CI gate would go red)."""
        server = REPO_ROOT / "src" / "repro" / "service" / "server.py"
        source = server.read_text()
        anchor = "            item = await self._queue.get()"
        assert anchor in source
        seeded = source.replace(
            anchor, "            time.sleep(0.1)\n" + anchor, 1
        )
        result = scan_source("src/repro/service/server.py", seeded)
        baseline = Baseline.load(
            (REPO_ROOT / "staticcheck_baseline.json").as_posix()
        )
        diff = baseline.diff(result.findings)
        assert any(
            f.rule == "asyncio-blocking" and "time.sleep" in f.message
            for f in diff.new
        )

    def test_checkpointed_class_registry_matches_real_classes(self):
        """Every registered checkpointed class name still exists in the
        tree (guards the rule config against renames)."""
        import repro.core.attack_tagger
        import repro.core.baselines
        import repro.core.rule_based
        import repro.core.sliding_window
        import repro.core.streaming
        import repro.testbed.sharding

        modules = [
            repro.core.attack_tagger,
            repro.core.baselines,
            repro.core.rule_based,
            repro.core.sliding_window,
            repro.core.streaming,
            repro.testbed.sharding,
        ]
        for name in sorted(CHECKPOINTED_CLASS_NAMES):
            assert any(hasattr(m, name) for m in modules), name
