"""Exact-equivalence regression suite for the incremental inference engine.

The streaming engine must be a pure performance optimisation: for every
stream it must produce the same unary tables, decodes, marginals,
detections, and confidences as the seed re-decode-everything path (kept
available as ``AttackTagger(engine="naive")``).  These tests assert that
equivalence alert-by-alert on randomized sequences, including window
eviction and late pattern-bonus relocation, and that the batched chain
functions match their unbatched counterparts on ragged inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AttackTagger,
    EvaluationExample,
    StreamingDecoder,
    WeightedPattern,
    default_parameters,
    evaluate_detector,
    threshold_sweep,
    window_sweep,
)
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.factor_graph import (
    _logsumexp,
    chain_map_decode,
    chain_map_decode_batch,
    chain_marginals,
    chain_marginals_batch,
    chain_stream_trace_batch,
)
from repro.core.sequences import AlertSequence
from repro.core.states import NUM_STATES, HiddenState
from repro.incidents import DEFAULT_CATALOGUE

ALL_NAMES = [spec.name for spec in DEFAULT_VOCABULARY]


def _random_stream(rng, length, entity="entity:x"):
    return [
        Alert(float(i), ALL_NAMES[rng.integers(len(ALL_NAMES))], entity)
        for i in range(length)
    ]


def _pair(max_window, **kwargs):
    streaming = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="streaming", **kwargs
    )
    naive = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="naive", **kwargs
    )
    return streaming, naive


class TestStreamingEngineEquivalence:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            AttackTagger(engine="psychic")

    @pytest.mark.parametrize("seed", range(8))
    def test_alert_by_alert_equivalence(self, seed):
        rng = np.random.default_rng(seed)
        stream = _random_stream(rng, int(rng.integers(5, 50)))
        streaming, naive = _pair(max_window=64)
        for alert in stream:
            ds, dn = streaming.observe(alert), naive.observe(alert)
            assert (ds is None) == (dn is None)
            if ds is not None:
                assert ds.alert_index == dn.alert_index
                assert ds.state is dn.state
                assert ds.confidence == dn.confidence
                assert ds.matched_patterns == dn.matched_patterns
                assert ds.state_trajectory == dn.state_trajectory
            states_s, marginal_s, matched_s = streaming.infer("entity:x")
            states_n, marginal_n, matched_n = naive.infer("entity:x")
            assert np.array_equal(states_s, states_n)
            np.testing.assert_allclose(marginal_s, marginal_n, rtol=0, atol=1e-12)
            assert matched_s == matched_n

    @pytest.mark.parametrize("max_window", [2, 3, 5, 8])
    def test_window_eviction_equivalence(self, max_window):
        """The window slide re-anchors the decoder; results must not drift."""
        rng = np.random.default_rng(max_window)
        stream = _random_stream(rng, 4 * max_window + 3)
        streaming, naive = _pair(max_window=max_window, detection_threshold=0.999)
        for alert in stream:
            streaming.observe(alert)
            naive.observe(alert)
            states_s, marginal_s, _ = streaming.infer("entity:x")
            states_n, marginal_n, _ = naive.infer("entity:x")
            assert np.array_equal(states_s, states_n)
            np.testing.assert_allclose(marginal_s, marginal_n, rtol=0, atol=1e-12)

    def test_late_pattern_bonus_relocation(self):
        """Extending a match moves its bonus off a *past* step.

        The pattern's second symbol arrives several alerts after the
        first, so the decoder must remove the partial-match bonus from
        the old end index and recompute forward messages from there.
        """
        parameters = default_parameters()
        patterns = list(DEFAULT_CATALOGUE)
        chosen = patterns[0]
        assert len(chosen.names) >= 2
        filler = "alert_login_normal"
        names = [chosen.names[0]] + [filler] * 4 + [chosen.names[1]]
        stream = [Alert(float(i), name, "entity:x") for i, name in enumerate(names)]
        streaming = AttackTagger(parameters, patterns=patterns, engine="streaming")
        naive = AttackTagger(parameters, patterns=patterns, engine="naive")
        for alert in stream:
            streaming.observe(alert)
            naive.observe(alert)
        # _decoder_for re-syncs lazily (observe drops the decoder once
        # the entity is detected, to keep post-detection alerts cheap).
        decoder = streaming._decoder_for(streaming.track("entity:x"))
        unary, _ = naive._build_unary([a.name for a in naive.track("entity:x").alerts])
        np.testing.assert_array_equal(decoder.unary_table(), unary)
        states_s, marginal_s, _ = streaming.infer("entity:x")
        states_n, marginal_n, _ = naive.infer("entity:x")
        assert np.array_equal(states_s, states_n)
        np.testing.assert_allclose(marginal_s, marginal_n, rtol=0, atol=1e-12)

    def test_streaming_unary_matches_naive_build(self):
        """The incrementally maintained unary table equals the seed rebuild."""
        rng = np.random.default_rng(11)
        streaming, naive = _pair(max_window=64)
        for alert in _random_stream(rng, 40):
            streaming.observe(alert)
            naive.observe(alert)
        decoder = streaming._decoder_for(streaming.track("entity:x"))
        names = [a.name for a in naive.track("entity:x").alerts]
        unary, _ = naive._build_unary(names)
        np.testing.assert_array_equal(decoder.unary_table(), unary)

    def test_decoder_matches_chain_functions_stepwise(self):
        """StreamingDecoder == chain_map_decode/chain_marginals per prefix."""
        rng = np.random.default_rng(5)
        parameters = default_parameters()
        patterns = [
            WeightedPattern(p.name, tuple(p.names), 2.0) for p in list(DEFAULT_CATALOGUE)[:10]
        ]
        decoder = StreamingDecoder(parameters, patterns)
        for step in range(30):
            decoder.append(ALL_NAMES[rng.integers(len(ALL_NAMES))])
            unary = decoder.unary_table()
            expected_path = chain_map_decode(unary, parameters.transition_log)
            expected_marginals = chain_marginals(unary, parameters.transition_log)
            assert np.array_equal(decoder.map_path(), expected_path)
            assert decoder.final_state() == int(expected_path[-1])
            np.testing.assert_allclose(
                decoder.final_marginal(), expected_marginals[-1], rtol=0, atol=1e-12
            )
            np.testing.assert_allclose(
                decoder.marginals(), expected_marginals, rtol=0, atol=1e-12
            )

    def test_run_sequence_equivalence_on_generated_corpus(self, corpus_examples):
        """Acceptance criterion: identical detections on the seed-7 corpus."""
        streaming, naive = _pair(max_window=64)
        for example in corpus_examples:
            ds = streaming.run_sequence(example.sequence)
            dn = naive.run_sequence(example.sequence)
            assert (ds is None) == (dn is None)
            if ds is not None:
                assert ds.alert_index == dn.alert_index
                assert abs(ds.confidence - dn.confidence) < 1e-9
                assert ds.state_trajectory == dn.state_trajectory


@pytest.fixture(scope="module")
def corpus_examples():
    from repro.incidents import IncidentGenerator

    generator = IncidentGenerator(seed=7)
    corpus = generator.generate_corpus()
    examples = [
        EvaluationExample(incident.sequence, True, incident.incident_id)
        for incident in list(corpus)[:60]
    ]
    benign = IncidentGenerator(seed=99).generate_benign_sequences(30)
    examples.extend(
        EvaluationExample(sequence, False, f"benign-{i}") for i, sequence in enumerate(benign)
    )
    return examples


class TestBatchChainFunctions:
    def _ragged_unaries(self, rng, n=7, k=NUM_STATES):
        lengths = [int(rng.integers(1, 25)) for _ in range(n)]
        return [rng.normal(size=(length, k)) * 3.0 for length in lengths]

    @pytest.mark.parametrize("seed", range(4))
    def test_map_decode_batch_matches_unbatched(self, seed):
        rng = np.random.default_rng(seed)
        unaries = self._ragged_unaries(rng)
        pairwise = rng.normal(size=(NUM_STATES, NUM_STATES))
        batch = chain_map_decode_batch(unaries, pairwise)
        for unary, path in zip(unaries, batch):
            assert np.array_equal(path, chain_map_decode(unary, pairwise))

    @pytest.mark.parametrize("seed", range(4))
    def test_marginals_batch_matches_unbatched(self, seed):
        rng = np.random.default_rng(seed)
        unaries = self._ragged_unaries(rng)
        pairwise = rng.normal(size=(NUM_STATES, NUM_STATES))
        batch = chain_marginals_batch(unaries, pairwise)
        for unary, posterior in zip(unaries, batch):
            np.testing.assert_allclose(
                posterior, chain_marginals(unary, pairwise), rtol=0, atol=1e-9
            )

    def test_stream_trace_batch_matches_prefix_decodes(self):
        rng = np.random.default_rng(9)
        unaries = self._ragged_unaries(rng, n=5)
        pairwise = rng.normal(size=(NUM_STATES, NUM_STATES))
        for unary, (marginals, states) in zip(
            unaries, chain_stream_trace_batch(unaries, pairwise)
        ):
            for t in range(unary.shape[0]):
                prefix = unary[: t + 1]
                np.testing.assert_allclose(
                    marginals[t], chain_marginals(prefix, pairwise)[-1], rtol=0, atol=1e-9
                )
                assert states[t] == chain_map_decode(prefix, pairwise)[-1]

    def test_empty_batches(self):
        pairwise = np.zeros((NUM_STATES, NUM_STATES))
        assert chain_map_decode_batch([], pairwise) == []
        assert chain_marginals_batch([], pairwise) == []
        empties = [np.zeros((0, NUM_STATES))]
        assert chain_map_decode_batch(empties, pairwise)[0].size == 0
        assert chain_marginals_batch(empties, pairwise)[0].shape == (0, NUM_STATES)


class TestLogsumexpEdgeCases:
    def test_all_neg_inf_slice_is_neg_inf(self):
        array = np.array([[-np.inf, -np.inf], [0.0, 1.0]])
        result = _logsumexp(array, axis=1)
        assert result[0] == -np.inf
        assert np.isfinite(result[1])

    def test_scalar_all_neg_inf(self):
        assert _logsumexp(np.array([-np.inf, -np.inf])) == -np.inf

    def test_finite_values_unchanged(self):
        rng = np.random.default_rng(0)
        array = rng.normal(size=(4, 5))
        expected = np.log(np.exp(array).sum(axis=1))
        np.testing.assert_allclose(_logsumexp(array, axis=1), expected, atol=1e-12)


class _OpaqueDetector:
    """Hides an AttackTagger from isinstance checks.

    Forces ``window_sweep`` onto its generic per-length branch so the
    trace fast path is compared against a genuinely independent
    implementation, not against itself.
    """

    def __init__(self, tagger):
        self._tagger = tagger

    def run_sequence(self, sequence, entity=None):
        return self._tagger.run_sequence(sequence, entity=entity)


class TestSweepFastPaths:
    def test_window_sweep_fast_matches_generic(self, corpus_examples):
        examples = corpus_examples[:40]
        lengths = [1, 2, 3, 5, 8]
        fast = window_sweep(
            lambda: AttackTagger(patterns=list(DEFAULT_CATALOGUE)), examples, lengths
        )
        generic = window_sweep(
            lambda: _OpaqueDetector(
                AttackTagger(patterns=list(DEFAULT_CATALOGUE), engine="naive")
            ),
            examples,
            lengths,
        )
        for length in lengths:
            fast_summary = fast[length].summary()
            generic_summary = generic[length].summary()
            for key, value in fast_summary.items():
                assert value == pytest.approx(generic_summary[key], abs=1e-9), (length, key)

    def test_threshold_sweep_matches_fixed_threshold_runs(self, corpus_examples):
        examples = corpus_examples[:30]
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        swept = threshold_sweep(tagger, examples, [0.4, 0.7])
        for threshold, report in swept.items():
            reference = evaluate_detector(
                AttackTagger(
                    patterns=list(DEFAULT_CATALOGUE),
                    detection_threshold=threshold,
                    engine="naive",
                ),
                examples,
            )
            for key, value in report.summary().items():
                assert value == pytest.approx(reference.summary()[key], abs=1e-9), (
                    threshold,
                    key,
                )

    def test_threshold_sweep_rejects_non_tagger(self):
        with pytest.raises(TypeError):
            threshold_sweep(object(), [], [0.5])

    def test_traces_batch_path_matches_replay(self):
        """Pattern-free taggers take the (N, T, K) tensor path."""
        rng = np.random.default_rng(21)
        sequences = [
            AlertSequence.from_names(
                [ALL_NAMES[rng.integers(len(ALL_NAMES))] for _ in range(rng.integers(1, 20))]
            )
            for _ in range(12)
        ]
        tagger = AttackTagger()  # no patterns -> batched path
        batched = tagger.detection_traces(sequences)
        for sequence, trace in zip(sequences, batched):
            replayed = tagger.detection_trace(sequence)
            np.testing.assert_allclose(
                trace.malicious_probability,
                replayed.malicious_probability,
                rtol=0,
                atol=1e-9,
            )
            assert np.array_equal(trace.map_is_malicious, replayed.map_is_malicious)
