"""Tests for the telemetry substrate: log models, normaliser, sanitizer,
filtering, and annotation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.telemetry import (
    AlertNormalizer,
    AuditdMonitor,
    AuditRecord,
    ConnRecord,
    GroundTruthAnnotator,
    MonitorKind,
    NoticeRecord,
    OsqueryMonitor,
    OsqueryResult,
    Sanitizer,
    ScanFilter,
    SyslogMessage,
    SyslogMonitor,
    ZeekMonitor,
    anonymize_ip,
    filter_alerts,
    merge_records,
    parse_conn_log,
    write_conn_log,
)
from repro.telemetry.annotator import AnnotationLabel, AnnotationMethod


class TestZeek:
    def test_conn_record_tsv_round_trip(self):
        record = ConnRecord(ts=100.5, uid="C1", orig_h="1.2.3.4", orig_p=1234,
                            resp_h="141.142.1.1", resp_p=5432, service="postgresql")
        assert ConnRecord.from_tsv(record.to_tsv()) == record

    def test_notice_record_tsv_round_trip(self):
        record = NoticeRecord(ts=5.0, note="DB::Version_Probe", msg="probe",
                              orig_h="1.2.3.4", resp_h="141.142.1.1", port=5432)
        assert NoticeRecord.from_tsv(record.to_tsv()) == record

    def test_conn_log_file_round_trip(self):
        monitor = ZeekMonitor()
        monitor.record_connection(1.0, "1.1.1.1", 1, "2.2.2.2", 22)
        monitor.record_connection(2.0, "1.1.1.1", 2, "2.2.2.2", 80)
        text = write_conn_log(monitor.conn_records())
        assert len(parse_conn_log(text)) == 2

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            ConnRecord.from_tsv("not\ta\tvalid\tline")

    def test_monitor_separates_streams(self):
        monitor = ZeekMonitor()
        monitor.record_connection(1.0, "1.1.1.1", 1, "2.2.2.2", 22)
        monitor.raise_notice(2.0, "C2::Beacon", "beacon", orig_h="2.2.2.2")
        assert len(monitor.conn_records()) == 1
        assert len(monitor.notice_records()) == 1


class TestSyslogAndAudit:
    def test_syslog_render_parse_round_trip(self):
        message = SyslogMessage(timestamp=3600.0, host="login00", program="sshd",
                                pid=999, body="Accepted password for alice from 1.2.3.4 port 22 ssh2")
        parsed = SyslogMessage.parse(message.render())
        assert parsed.program == "sshd" and parsed.host == "login00"
        assert "alice" in parsed.body

    def test_syslog_monitor_helpers(self):
        monitor = SyslogMonitor("login00")
        monitor.sshd_accepted(1.0, "alice", "1.2.3.4")
        monitor.wget_download(2.0, "alice", "http://64.215.1.2/abs.c")
        monitor.log_truncated(3.0, "/var/log/wtmp")
        assert len(monitor.records) == 3
        assert all(r.monitor is MonitorKind.SYSLOG for r in monitor)

    def test_audit_record_round_trip(self):
        monitor = AuditdMonitor("node-1")
        record = monitor.setuid_transition(10.0, "alice")
        parsed = AuditRecord.parse(record.render(), host="node-1")
        assert parsed.record_type == "SYSCALL"
        assert parsed.fields["syscall"] == "setuid"

    def test_osquery_round_trip(self):
        monitor = OsqueryMonitor("node-1")
        result = monitor.authorized_keys_change(5.0, "alice", "attacker@evil")
        parsed = OsqueryResult.parse(result.render())
        assert parsed.query_name == "authorized_keys"
        assert parsed.columns["username"] == "alice"

    def test_merge_records_time_ordered(self):
        syslog = SyslogMonitor("a")
        syslog.sshd_accepted(5.0, "x", "1.1.1.1")
        audit = AuditdMonitor("a")
        audit.execve(2.0, "x", "/bin/ls")
        merged = merge_records(syslog, audit)
        assert [r.timestamp for r in merged] == [2.0, 5.0]

    def test_wrong_monitor_kind_rejected(self):
        syslog = SyslogMonitor("a")
        zeek = ZeekMonitor()
        zeek.record_connection(1.0, "1.1.1.1", 1, "2.2.2.2", 22)
        with pytest.raises(ValueError):
            syslog.emit(zeek.records[0])


class TestNormalizer:
    def test_paper_wget_example(self):
        """The canonical example from §II.A maps to alert_download_sensitive."""
        syslog = SyslogMonitor("internal-host")
        syslog.wget_download(83722.0, "alice", "http://64.215.33.18/abs.c")
        normalizer = AlertNormalizer()
        alerts = normalizer.normalize_stream(syslog.records)
        assert len(alerts) == 1
        assert alerts[0].name == "alert_download_sensitive"
        assert alerts[0].entity == "user:alice"
        assert alerts[0].host == "internal-host"
        assert alerts[0].timestamp == 83722.0

    def test_zeek_notice_mapping(self):
        zeek = ZeekMonitor()
        zeek.raise_notice(1.0, "DB::LargeObject_Payload", "ELF magic", orig_h="111.200.1.1")
        alerts = AlertNormalizer().normalize_stream(zeek.records)
        assert alerts[0].name == "alert_db_largeobject_payload"
        assert alerts[0].source_ip == "111.200.1.1"

    def test_db_port_probe_from_conn(self):
        zeek = ZeekMonitor()
        zeek.record_connection(1.0, "1.2.3.4", 5555, "141.142.230.1", 5432, conn_state="S0")
        alerts = AlertNormalizer().normalize_stream(zeek.records)
        assert alerts[0].name == "alert_db_port_probe"

    def test_c2_connection_from_conn(self):
        zeek = ZeekMonitor()
        zeek.record_connection(1.0, "141.142.230.5", 5555, "194.145.220.12", 443, conn_state="SF")
        alerts = AlertNormalizer().normalize_stream(zeek.records)
        assert alerts[0].name == "alert_outbound_c2"

    def test_audit_privilege_escalation(self):
        audit = AuditdMonitor("node-1")
        audit.setuid_transition(4.0, "alice")
        alerts = AlertNormalizer().normalize_stream(audit.records)
        assert alerts[0].name == "alert_privilege_escalation"

    def test_osquery_lateral_movement_commands(self):
        osq = OsqueryMonitor("node-1")
        osq.process_event(1.0, "root", "/usr/bin/find", "find / -name id_rsa*")
        osq.process_event(2.0, "root", "/usr/bin/ssh", "ssh -oBatchMode=yes root@other ./kp")
        alerts = AlertNormalizer().normalize_stream(osq.records)
        assert [a.name for a in alerts] == ["alert_ssh_key_enumeration", "alert_lateral_ssh_batch"]

    def test_unmatched_records_dropped_and_counted(self):
        osq = OsqueryMonitor("node-1")
        osq.listening_port(1.0, 8080, "nginx")
        normalizer = AlertNormalizer()
        assert normalizer.normalize_stream(osq.records) == []
        assert normalizer.dropped == 1

    def test_log_truncation_maps_to_erase_trace(self):
        syslog = SyslogMonitor("node-1")
        syslog.command_executed(1.0, "root", "echo 0>/var/log/wtmp")
        alerts = AlertNormalizer().normalize_stream(syslog.records)
        assert alerts[0].name == "alert_erase_forensic_trace"


class TestSanitizer:
    def test_email_and_ssn_scrubbed(self):
        sanitizer = Sanitizer()
        text = sanitizer.sanitize_text("mail alice@example.org ssn 123-45-6789")
        assert "<email>" in text and "<ssn>" in text
        assert sanitizer.report.emails == 1 and sanitizer.report.ssns == 1

    def test_ip_truncated_keeps_prefix(self):
        sanitizer = Sanitizer()
        text = sanitizer.sanitize_text("from 103.102.166.28 port 22")
        assert "103.102.xxx.yyy" in text

    def test_home_path_scrubbed(self):
        sanitizer = Sanitizer()
        assert "/home/<user>" in sanitizer.sanitize_text("read /home/alice/secret.txt")

    def test_metadata_secrets_dropped_and_source_ip_kept(self):
        sanitizer = Sanitizer()
        clean = sanitizer.sanitize_metadata(
            {"password": "hunter2", "source_ip": "1.2.3.4", "note": "bob@example.org"}
        )
        assert "password" not in clean
        assert clean["source_ip"] == "1.2.3.4"
        assert "<email>" in clean["note"]

    def test_anonymize_ip_helper(self):
        assert anonymize_ip("103.102.166.28") == "103.102.xxx.yyy"
        assert anonymize_ip("103.102.166.28", keep_octets=3) == "103.102.166.xxx"
        assert anonymize_ip("not-an-ip") == "not-an-ip"

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_sanitize_never_raises(self, text):
        assert isinstance(Sanitizer().sanitize_text(text), str)


class TestScanFilter:
    def _scan_alerts(self, count=200, source="9.9.9.9"):
        return [
            Alert(timestamp=float(i), name="alert_port_scan", entity=f"host:h{i % 40}",
                  source_ip=source, host=f"h{i % 40}")
            for i in range(count)
        ]

    def test_mass_scanner_suppressed(self):
        attack = [Alert(500.0, "alert_download_sensitive", "user:x", source_ip="8.8.8.8", host="login")]
        survivors, stats = filter_alerts(self._scan_alerts() + attack)
        assert stats.scanner_suppressed == 200
        assert [a.name for a in survivors] == ["alert_download_sensitive"]

    def test_dedup_window(self):
        alerts = [
            Alert(float(i * 10), "alert_bruteforce_ssh", "user:x", source_ip="7.7.7.7", host="login")
            for i in range(5)
        ]
        survivors, stats = filter_alerts(alerts, dedup_window_seconds=3600.0)
        assert len(survivors) == 1
        assert stats.deduplicated == 4

    def test_dedup_respects_window_expiry(self):
        alerts = [
            Alert(0.0, "alert_bruteforce_ssh", "user:x", source_ip="7.7.7.7", host="login"),
            Alert(7200.0, "alert_bruteforce_ssh", "user:x", source_ip="7.7.7.7", host="login"),
        ]
        survivors, _ = filter_alerts(alerts, dedup_window_seconds=3600.0)
        assert len(survivors) == 2

    def test_attack_source_not_treated_as_scanner(self):
        """A source that also produced post-recon alerts is never suppressed."""
        mixed = self._scan_alerts(count=50, source="6.6.6.6") + [
            Alert(999.0, "alert_remote_code_execution", "host:h1", source_ip="6.6.6.6", host="h1")
        ]
        scan_filter = ScanFilter()
        survivors = scan_filter.filter(mixed)
        assert any(a.source_ip == "6.6.6.6" and a.name == "alert_remote_code_execution" for a in survivors)

    def test_reduction_factor_reported(self):
        survivors, stats = filter_alerts(self._scan_alerts(300) +
                                         [Alert(1.0, "alert_outbound_c2", "user:x", source_ip="5.5.5.5")])
        assert stats.reduction_factor > 100

    def test_reduction_factor_distinguishes_total_drop(self):
        # Dropping every alert is an infinite reduction, not 0.
        _, stats = filter_alerts(self._scan_alerts(300))
        assert stats.output_alerts == 0
        assert stats.reduction_factor == float("inf")
        # No input at all is vacuously no reduction.
        _, empty_stats = filter_alerts([])
        assert empty_stats.reduction_factor == 1.0

    def test_scan_filter_stage_adapter(self):
        from repro.telemetry import ScanFilterStage

        scan_filter = ScanFilter()
        stage = ScanFilterStage(scan_filter)
        assert stage.name == "filter"
        survivors = stage.process(self._scan_alerts(50))
        assert survivors == []
        assert scan_filter.stats.input_alerts == 50


class TestAnnotator:
    def _alerts(self):
        return [
            Alert(1.0, "alert_login_normal", "user:benign1"),
            Alert(2.0, "alert_download_sensitive", "user:attacker"),
            Alert(3.0, "alert_download_sensitive", "user:benign1"),
            Alert(4.0, "alert_privilege_escalation", "user:attacker"),
        ]

    def test_labels_and_methods(self):
        annotator = GroundTruthAnnotator()
        annotated = annotator.annotate(self._alerts(), attack_entities={"user:attacker"})
        labels = {(a.alert.entity, a.alert.name): a.label for a in annotated}
        assert labels[("user:attacker", "alert_privilege_escalation")] is AnnotationLabel.MALICIOUS
        assert labels[("user:benign1", "alert_login_normal")] is AnnotationLabel.BENIGN

    def test_ambiguous_alerts_go_to_experts(self):
        annotator = GroundTruthAnnotator()
        annotated = annotator.annotate(self._alerts(), attack_entities={"user:attacker"})
        expert_items = [a for a in annotated if a.method is AnnotationMethod.EXPERT]
        # alert_download_sensitive occurs under both an attack and a benign
        # entity, so it is ambiguous and routed to the expert panel.
        assert expert_items
        assert all(a.alert.name == "alert_download_sensitive" for a in expert_items)
        assert 0 < annotator.stats.expert_fraction < 1

    def test_majority_automatic(self, corpus):
        """On the full corpus the automatic fraction is high (paper: 99.7%)."""
        alerts = []
        attack_entities = set()
        for incident in corpus.incidents[:60]:
            alerts.extend(incident.sequence)
            attack_entities.add(incident.sequence[0].entity)
        annotator = GroundTruthAnnotator()
        annotator.annotate(sorted(alerts, key=lambda a: a.timestamp), attack_entities)
        assert annotator.stats.automatic_fraction > 0.9
