"""Tests for the testbed architecture: addresses, topology, scheduler,
services, honeypot, isolation, VRT, BHR, responder, pipeline."""

from __future__ import annotations

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AttackTagger
from repro.core.alerts import Alert
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import (
    AddressAllocator,
    AddressBlock,
    BHRClient,
    BlackHoleRouter,
    EgressVerdict,
    Honeypot,
    HostRole,
    OverlayNetwork,
    PRODUCTION_NETWORK,
    ResponseOrchestrator,
    ScanRecord,
    ServiceMonitors,
    ServiceState,
    Simulator,
    SnapshotRepository,
    TestbedPipeline,
    TESTBED_NETWORK,
    VMLifecycleManager,
    VulnerabilityReproductionTool,
    WebApplicationService,
    build_default_topology,
    generate_scan_storm,
    int_to_ip,
    ip_to_int,
)
from repro.testbed.isolation import EgressPolicy


class TestAddresses:
    def test_ip_int_round_trip(self):
        assert int_to_ip(ip_to_int("141.142.23.5")) == "141.142.23.5"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    def test_block_membership_and_size(self):
        assert PRODUCTION_NETWORK.size == 65_536
        assert "141.142.200.7" in PRODUCTION_NETWORK
        assert "143.219.1.1" not in PRODUCTION_NETWORK
        assert TESTBED_NETWORK.size == 256

    def test_block_alignment_enforced(self):
        with pytest.raises(ValueError):
            AddressBlock("141.142.0.1", 16)

    def test_parse_cidr(self):
        block = AddressBlock.parse("10.0.0.0/8")
        assert block.size == 1 << 24

    def test_allocator_sequential_and_exhaustion(self):
        block = AddressBlock("192.168.1.0", 30)
        allocator = AddressAllocator(block)
        first = allocator.allocate("a")
        assert first == "192.168.1.1"
        assert allocator.allocate("a") == first  # idempotent per label
        allocator.allocate("b")
        with pytest.raises(RuntimeError):
            allocator.allocate("c")

    def test_subblock(self):
        sub = PRODUCTION_NETWORK.subblock(230 * 256, 24)
        assert sub.cidr == "141.142.230.0/24"
        with pytest.raises(ValueError):
            PRODUCTION_NETWORK.subblock(0, 8)


class TestTopology:
    def test_default_topology_structure(self, topology):
        assert len(topology.hosts(role=HostRole.LOGIN)) == 4
        assert len(topology.hosts(role=HostRole.DATABASE)) == 4
        assert len(topology) > 70

    def test_trust_closure_contains_direct_edges(self, topology):
        login = topology.hosts(role=HostRole.LOGIN)[0]
        reachable = topology.reachable_via_ssh(login.name)
        assert login.known_hosts <= reachable | {login.name}

    def test_duplicate_host_rejected(self):
        from repro.testbed.topology import ClusterTopology, NetworkSegment

        topo = ClusterTopology()
        topo.add_segment(NetworkSegment("s", AddressBlock("10.1.0.0", 24)))
        topo.add_host("a", HostRole.COMPUTE, "s")
        with pytest.raises(ValueError):
            topo.add_host("a", HostRole.COMPUTE, "s")

    def test_host_lookup_by_address(self, topology):
        host = topology.hosts()[0]
        assert topology.host_by_address(host.address) is host


class TestSimulator:
    def test_events_fire_in_time_order(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(5.0, lambda s: fired.append("b"))
        simulator.schedule(1.0, lambda s: fired.append("a"))
        simulator.run()
        assert fired == ["a", "b"]
        assert simulator.now == 5.0

    def test_cancellation(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda s: fired.append("x"))
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_periodic_with_max_firings(self):
        simulator = Simulator()
        count = []
        simulator.schedule_periodic(10.0, lambda s: count.append(s.now), max_firings=3)
        simulator.run()
        assert count == [10.0, 20.0, 30.0]

    def test_run_until(self):
        simulator = Simulator()
        simulator.schedule(100.0, lambda s: None)
        executed = simulator.run(until=50.0)
        assert executed == 0
        assert simulator.now == 50.0
        assert simulator.pending == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda s: None)


class TestServicesAndHoneypot:
    def test_postgres_default_credentials(self, honeypot):
        address = honeypot.addresses()[0]
        hint = honeypot.hint_for_entry("entry00")
        service = honeypot.connect_postgres(1.0, "111.200.1.1", address, hint.username, hint.password)
        assert service is not None
        assert service.state is ServiceState.COMPROMISED

    def test_postgres_wrong_credentials_rejected(self, honeypot):
        address = honeypot.addresses()[0]
        assert honeypot.connect_postgres(1.0, "111.200.1.1", address, "postgres", "wrong") is None

    def test_postgres_query_requires_auth(self, honeypot):
        service = honeypot.entry_point("entry00").postgres
        assert not service.query(1.0, "111.200.1.1", "SHOW server_version_num").ok

    def test_postgres_largeobject_and_export(self, honeypot):
        address = honeypot.addresses()[0]
        hint = honeypot.hint_for_entry("entry00")
        service = honeypot.connect_postgres(1.0, "111.200.1.1", address, hint.username, hint.password)
        result = service.query(2.0, "111.200.1.1", "SELECT lowrite(0, '7f454c46aabb')")
        assert result.ok
        export = service.query(3.0, "111.200.1.1", "SELECT lo_export(16384, '/tmp/kp')")
        assert export.ok and service.exported_files == ["/tmp/kp"]
        notices = [n.note for n in service.monitors.zeek.notice_records()]
        assert "DB::LargeObject_Payload" in notices
        assert "DB::File_Export" in notices

    def test_sixteen_entry_points_with_unique_hints(self, honeypot):
        assert len(honeypot.entry_points) == 16
        assert len({h.key for h in honeypot.hints}) == 16

    def test_attacker_traced_by_credential(self, honeypot):
        hint = honeypot.hints[3]
        traced = honeypot.trace_attacker(hint.username, hint.password)
        assert traced is not None and traced.entry_point == hint.entry_point
        assert honeypot.trace_attacker("postgres", "not-advertised") is None

    def test_web_application_exploit(self):
        monitors = ServiceMonitors.for_host("web01")
        service = WebApplicationService("web01", "141.142.230.50", monitors)
        assert service.exploit(1.0, "1.2.3.4", "%{(#cmd='id')}")
        assert service.state is ServiceState.COMPROMISED

    def test_recycle_compromised_instances(self, honeypot):
        address = honeypot.addresses()[0]
        hint = honeypot.hint_for_entry("entry00")
        honeypot.connect_postgres(1.0, "111.200.1.1", address, hint.username, hint.password)
        recycled = honeypot.recycle_compromised(now=2.0)
        assert recycled == 1
        assert len(honeypot.lifecycle.recycled) == 1


class TestIsolation:
    def test_egress_policy_drops_internet_bound(self):
        overlay = OverlayNetwork()
        overlay.join("c1")
        policy = EgressPolicy(overlay)
        attempt = policy.evaluate(1.0, "c1", "194.145.220.12", 443)
        assert attempt.verdict is EgressVerdict.DROPPED
        assert policy.dropped_attempts() == [attempt]
        assert policy.escaped_attempts() == []

    def test_egress_allows_overlay_destinations(self):
        overlay = OverlayNetwork()
        overlay.join("c1")
        address = overlay.join("c2")
        policy = EgressPolicy(overlay)
        assert policy.evaluate(1.0, "c1", address, 22).verdict is EgressVerdict.ALLOWED

    def test_vm_lifecycle_recycling_and_scaling(self):
        manager = VMLifecycleManager(min_instances=2, max_instances=4, max_lifetime_seconds=100.0)
        manager.ensure_capacity(0.0)
        assert len(manager.running_instances()) == 2
        manager.scale_for_load(0.0, concurrent_attacks=5)
        assert len(manager.running_instances()) == 4  # clamped at max
        replacements = manager.recycle_expired(now=200.0)
        assert len(replacements) == 4
        assert len(manager.recycled) == 4

    def test_vm_lifecycle_validation(self):
        with pytest.raises(ValueError):
            VMLifecycleManager(min_instances=3, max_instances=2)


class TestVRT:
    def test_heartbleed_reproduction(self):
        spec = VulnerabilityReproductionTool().reproduce_cve("CVE-2014-0160")
        assert spec.release.codename == "wheezy"
        assert spec.target_package.version.startswith("1.0.1")
        assert spec.is_vulnerable
        assert "snapshot.debian.org" in spec.snapshot_url
        assert "debootstrap" in spec.debootstrap_command()

    def test_post_patch_date_not_vulnerable(self):
        spec = VulnerabilityReproductionTool().build_container("20140601", "openssl")
        assert "CVE-2014-0160" not in spec.reproduced_cves

    def test_date_parsing_and_validation(self):
        tool = VulnerabilityReproductionTool()
        assert tool.parse_date("20140401") == dt.date(2014, 4, 1)
        with pytest.raises(ValueError):
            tool.parse_date("2014-04-01")
        with pytest.raises(LookupError):
            tool.build_container("20040101", "openssl")

    def test_dependency_closure(self):
        repo = SnapshotRepository()
        closure = repo.dependency_closure("openssl", dt.date(2014, 4, 1))
        assert {"openssl", "libc6", "zlib1g"} <= set(closure)

    def test_release_selection_is_latest_before_date(self):
        tool = VulnerabilityReproductionTool()
        assert tool.select_release(dt.date(2014, 4, 1)).codename == "wheezy"
        assert tool.select_release(dt.date(2022, 1, 1)).codename == "bullseye"

    def test_unknown_cve_and_package(self):
        tool = VulnerabilityReproductionTool()
        with pytest.raises(KeyError):
            tool.reproduce_cve("CVE-9999-0001")
        with pytest.raises(KeyError):
            tool.build_container("20200101", "no-such-package")


class TestBHR:
    def test_block_expiry(self):
        router = BlackHoleRouter()
        router.block("1.2.3.4", reason="scan", now=0.0, duration_seconds=100.0)
        assert router.is_blocked("1.2.3.4", now=50.0)
        assert not router.is_blocked("1.2.3.4", now=150.0)

    def test_permanent_block_and_unblock(self):
        router = BlackHoleRouter()
        router.block("1.2.3.4", reason="attack", now=0.0, duration_seconds=None)
        assert router.is_blocked("1.2.3.4", now=1e9)
        assert router.unblock("1.2.3.4")
        assert not router.is_blocked("1.2.3.4", now=0.0)

    def test_client_audit_log(self):
        router = BlackHoleRouter()
        client = BHRClient(router, caller="attacktagger")
        client.block("9.9.9.9", reason="c2", now=0.0)
        client.query("9.9.9.9", now=1.0)
        client.list_blocks(now=1.0)
        actions = [entry["action"] for entry in client.audit_log]
        assert actions == ["block", "query", "list"]

    def test_scan_storm_counts(self):
        router = BlackHoleRouter()
        counts = generate_scan_storm(router, total_scans=2000, dominant_scanner="103.102.1.1",
                                     dominant_fraction=0.8, seed=1)
        assert router.scan_count() == 2000
        assert counts["103.102.1.1"] == 1600
        assert router.top_scanners(1)[0][0] == "103.102.1.1"


class TestResponderAndPipeline:
    def _detection(self, ts=100.0):
        from repro.core.attack_tagger import Detection
        from repro.core.states import HiddenState

        trigger = Alert(ts, "alert_outbound_c2", "host:container-entry00",
                        source_ip="111.200.45.67", host="container-entry00")
        return Detection(entity="host:container-entry00", timestamp=ts, alert_index=5,
                         trigger=trigger, state=HiddenState.MALICIOUS, confidence=0.93)

    def test_response_blocks_and_notifies(self):
        router = BlackHoleRouter()
        responder = ResponseOrchestrator(BHRClient(router))
        actions = responder.handle_detection(self._detection())
        assert len(responder.notifications) == 1
        assert router.is_blocked("111.200.45.67", now=101.0)
        assert responder.is_quarantined("host:container-entry00")
        assert len(actions) >= 3

    def test_mass_scanner_block_is_short(self):
        router = BlackHoleRouter()
        responder = ResponseOrchestrator(BHRClient(router))
        responder.handle_mass_scanner(0.0, "103.102.1.1", 50_000)
        assert router.is_blocked("103.102.1.1", now=1000.0)
        assert not router.is_blocked("103.102.1.1", now=2 * 86_400.0)
        assert len(responder.notifications) == 0

    def test_pipeline_end_to_end_detects_and_responds(self, honeypot):
        pipeline = TestbedPipeline(
            detectors={"factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE))},
            honeypot=honeypot,
        )
        attack_names = [
            "alert_db_default_password_login", "alert_service_version_probe",
            "alert_db_largeobject_payload", "alert_tmp_executable_created", "alert_outbound_c2",
        ]
        alerts = [
            Alert(float(i * 300), name, "host:container-entry00", source_ip="111.200.45.67",
                  host="container-entry00")
            for i, name in enumerate(attack_names)
        ]
        detections = pipeline.ingest_alerts(alerts)
        assert detections, "pipeline should detect the ransomware chain"
        assert pipeline.router.is_blocked("111.200.45.67", now=alerts[-1].timestamp + 1)
        summary = pipeline.summary()
        assert summary["detections"] >= 1
        assert summary["notifications"] >= 1

    def test_pipeline_filters_scan_noise(self):
        pipeline = TestbedPipeline()
        scans = [
            Alert(float(i), "alert_port_scan", f"host:h{i % 30}", source_ip="9.9.9.9", host=f"h{i % 30}")
            for i in range(300)
        ]
        pipeline.ingest_alerts(scans)
        assert pipeline.stats.filtered_alerts < pipeline.stats.normalized_alerts
        assert pipeline.stats.detections == 0

    def test_pipeline_block_top_scanners(self):
        router = BlackHoleRouter()
        generate_scan_storm(router, total_scans=3000, dominant_scanner="103.102.1.1", seed=2)
        pipeline = TestbedPipeline(router=router)
        blocked = pipeline.block_top_scanners(now=3600.0, min_scans=1000)
        assert blocked >= 1
        assert router.is_blocked("103.102.1.1", now=3700.0)

    def test_pipeline_ingest_raw_records(self):
        from repro.telemetry import SyslogMonitor

        syslog = SyslogMonitor("internal-host")
        syslog.wget_download(10.0, "alice", "http://64.215.33.18/abs.c")
        pipeline = TestbedPipeline()
        pipeline.ingest_raw(syslog.records)
        assert pipeline.stats.normalized_alerts == 1
        assert "normalize" in pipeline.stats.stage_seconds

    def test_per_stage_timing_split(self, honeypot):
        pipeline = TestbedPipeline(
            detectors={"factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE))},
            honeypot=honeypot,
        )
        attack_names = [
            "alert_db_default_password_login", "alert_service_version_probe",
            "alert_db_largeobject_payload", "alert_tmp_executable_created", "alert_outbound_c2",
        ]
        alerts = [
            Alert(float(i * 300), name, "host:container-entry00", source_ip="111.200.45.67",
                  host="container-entry00")
            for i, name in enumerate(attack_names)
        ]
        pipeline.ingest_alerts(alerts)
        stats = pipeline.stats
        # Responder time no longer inflates the detection timing.
        assert set(stats.stage_seconds) >= {"filter", "detect", "respond"}
        assert stats.detection_seconds == stats.stage_seconds["detect"]
        assert stats.response_seconds == stats.stage_seconds["respond"]
        assert stats.response_seconds > 0.0
        summary = pipeline.summary()
        assert summary["stage_seconds"] == stats.stage_seconds
        assert summary["response_seconds"] == stats.response_seconds

    def test_filter_reduction_distinguishes_total_drop(self):
        from repro.testbed.pipeline import PipelineStats

        # No alerts at all: vacuously no reduction.
        assert PipelineStats().filter_reduction == 1.0
        # Normal ratio.
        assert PipelineStats(normalized_alerts=100, filtered_alerts=20).filter_reduction == 5.0
        # The filter dropped *everything*: an infinite reduction, not 0.
        assert PipelineStats(normalized_alerts=100, filtered_alerts=0).filter_reduction == float("inf")

    def test_filter_reduction_inf_through_the_pipeline(self):
        pipeline = TestbedPipeline()
        # One mass scanner sweeping 30 hosts: every alert is suppressed.
        scans = [
            Alert(float(i * 4000), "alert_port_scan", f"host:h{i}", source_ip="9.9.9.9",
                  host=f"h{i}")
            for i in range(30)
        ]
        pipeline.ingest_alerts(scans)
        assert pipeline.stats.filtered_alerts == 0
        assert pipeline.summary()["filter_reduction"] == float("inf")

    def test_block_top_scanners_is_incremental(self):
        router = BlackHoleRouter()
        generate_scan_storm(router, total_scans=3000, dominant_scanner="103.102.1.1", seed=2)
        pipeline = TestbedPipeline(router=router)
        assert pipeline.block_top_scanners(now=3600.0, min_scans=1000) == 1
        # No new scans: nothing to revisit (the crossed set drained).
        assert pipeline.block_top_scanners(now=3600.0, min_scans=1000) == 0
        # The scanner keeps scanning after its 24h block expires: its new
        # scans re-surface it and it is re-blocked.
        two_days = 2 * 86_400.0
        assert not router.is_blocked("103.102.1.1", now=two_days)
        router.record_scan(ScanRecord(two_days, "103.102.1.1", "141.142.1.1", 22))
        assert pipeline.block_top_scanners(now=two_days, min_scans=1000) == 1
        assert router.is_blocked("103.102.1.1", now=two_days + 10.0)

    def test_block_top_scanners_requeues_still_blocked_sources(self):
        router = BlackHoleRouter()
        generate_scan_storm(router, total_scans=3000, dominant_scanner="103.102.1.1", seed=2)
        pipeline = TestbedPipeline(router=router)
        assert pipeline.block_top_scanners(now=3600.0, min_scans=1000) == 1
        # The scanner keeps scanning *while blocked*, then goes quiet.
        router.record_scan(ScanRecord(4000.0, "103.102.1.1", "141.142.1.1", 22))
        assert pipeline.block_top_scanners(now=4100.0, min_scans=1000) == 0
        # The crossing signal survives the skipped sweep: once the 24h
        # block expires, the next sweep re-blocks without new scans.
        two_days = 2 * 86_400.0
        assert not router.is_blocked("103.102.1.1", now=two_days)
        assert pipeline.block_top_scanners(now=two_days, min_scans=1000) == 1
        assert router.is_blocked("103.102.1.1", now=two_days + 10.0)

    def test_block_top_scanners_with_lower_threshold_registers_new_watch(self):
        router = BlackHoleRouter()
        generate_scan_storm(router, total_scans=3000, dominant_scanner="103.102.1.1",
                            dominant_fraction=0.5, other_scanners=3, seed=3)
        pipeline = TestbedPipeline(router=router)
        assert pipeline.block_top_scanners(now=3600.0, min_scans=1400) == 1
        # A lower threshold walks the counter once and catches the tail.
        assert pipeline.block_top_scanners(now=3600.0, min_scans=100) >= 3

    def test_sharded_pipeline_facade_keeps_detector_instances(self):
        detector = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        pipeline = TestbedPipeline(detectors={"factor_graph": detector})
        # Default configuration drives the caller's instance directly.
        assert pipeline.detectors["factor_graph"] is detector


class TestTrafficMirrorBuffers:
    """Bounded-buffer eviction is O(1) and every drop is counted."""

    def _raw_record(self, timestamp: float):
        from repro.telemetry import SyslogMonitor

        monitor = SyslogMonitor("internal-host")
        monitor.sshd_accepted(timestamp, "alice", "10.0.0.1")
        return monitor.records[0]

    def test_unbounded_mirror_never_drops(self):
        from repro.testbed import TrafficMirror

        mirror = TrafficMirror()
        for index in range(100):
            mirror.publish_alert(Alert(float(index), "alert_port_scan", "host:h0"))
        assert len(mirror.alert_buffer) == 100
        assert mirror.stats.dropped_alerts == 0
        assert mirror.stats.dropped_raw == 0

    def test_saturated_raw_buffer_counts_every_drop(self):
        from repro.testbed import TrafficMirror

        mirror = TrafficMirror(max_buffer=10)
        for index in range(25):
            mirror.publish_raw(self._raw_record(float(index)))
        assert len(mirror.raw_buffer) == 10
        # 25 published, 10 retained: all 15 evictions counted, not one
        # per trim.
        assert mirror.stats.dropped_raw == 15
        assert mirror.stats.raw_records == 25
        # The retained window is the newest records.
        assert mirror.raw_buffer[0].timestamp == 15.0
        assert mirror.raw_buffer[-1].timestamp == 24.0

    def test_saturated_alert_buffer_counts_drops_too(self):
        from repro.testbed import TrafficMirror

        mirror = TrafficMirror(max_buffer=4)
        for index in range(9):
            mirror.publish_alert(Alert(float(index), "alert_port_scan", "host:h0"))
        # Alert-buffer drops used to be invisible; now they are counted.
        assert mirror.stats.dropped_alerts == 5
        assert [alert.timestamp for alert in mirror.alert_buffer] == [5.0, 6.0, 7.0, 8.0]

    def test_subscribers_see_dropped_items(self):
        from repro.testbed import TrafficMirror

        mirror = TrafficMirror(max_buffer=2)
        seen: list[float] = []
        mirror.subscribe_alerts(lambda alert: seen.append(alert.timestamp))
        for index in range(6):
            mirror.publish_alert(Alert(float(index), "alert_port_scan", "host:h0"))
        # Bounding the retention buffer never affects delivery.
        assert seen == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        assert len(mirror.alert_buffer) == 2

    def test_max_buffer_is_read_only(self):
        from repro.testbed import TrafficMirror

        mirror = TrafficMirror(max_buffer=5)
        assert mirror.max_buffer == 5
        assert TrafficMirror().max_buffer is None
        # The bound is the deques' maxlen, fixed at construction; a
        # silent post-hoc assignment (which the old list-based trim
        # honoured) must fail loudly instead of doing nothing.
        with pytest.raises(AttributeError):
            mirror.max_buffer = 10
