"""Tests for training, preemption semantics, and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AttackTagger,
    CriticalAlertDetector,
    DEFAULT_VOCABULARY,
    EvaluationExample,
    HiddenState,
    LabeledSequence,
    ParameterEstimator,
    PreemptionOutcome,
    compare_detectors,
    cross_validate,
    evaluate_detector,
    evaluate_preemption,
    find_damage_boundary,
    label_sequence_from_stages,
    preemptable_window,
    summarize_outcomes,
    train_from_incidents,
    window_sweep,
)
from repro.core.attack_tagger import Detection
from repro.core.evaluation import k_fold_indices
from repro.core.factors import default_parameters
from repro.core.sequences import AlertSequence
from repro.core.states import NUM_STATES
from repro.incidents import DEFAULT_CATALOGUE

ATTACK = ["alert_login_stolen_credential", "alert_download_sensitive",
          "alert_compile_kernel_module", "alert_privilege_escalation",
          "alert_data_exfiltration"]
BENIGN = ["alert_login_normal", "alert_job_submission", "alert_cron_job"]


class TestLabeling:
    def test_labels_match_sequence_length(self):
        example = label_sequence_from_stages(AlertSequence.from_names(ATTACK))
        assert len(example.labels) == len(ATTACK)

    def test_benign_sequences_all_benign(self):
        example = label_sequence_from_stages(
            AlertSequence.from_names(ATTACK), is_attack=False
        )
        assert set(example.labels) == {int(HiddenState.BENIGN)}

    def test_malicious_persistence(self):
        """Once malicious, stage-based labels never fall back to suspicious."""
        names = ["alert_privilege_escalation", "alert_download_sensitive"]
        example = label_sequence_from_stages(AlertSequence.from_names(names))
        assert example.labels[0] == int(HiddenState.MALICIOUS)
        assert example.labels[1] == int(HiddenState.MALICIOUS)

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            LabeledSequence(AlertSequence.from_names(BENIGN), labels=(0,))


class TestParameterEstimator:
    def _examples(self):
        return [
            label_sequence_from_stages(AlertSequence.from_names(ATTACK), is_attack=True),
            label_sequence_from_stages(AlertSequence.from_names(BENIGN), is_attack=False),
        ]

    def test_fit_produces_valid_distributions(self):
        estimator = ParameterEstimator()
        params = estimator.fit(self._examples(), patterns=list(DEFAULT_CATALOGUE))
        obs = np.exp(params.observation_log)
        assert np.allclose(obs.sum(axis=0), 1.0, atol=1e-6)
        trans = np.exp(params.transition_log)
        assert np.allclose(trans.sum(axis=1), 1.0, atol=1e-6)
        assert np.exp(params.initial_log).sum() == pytest.approx(1.0, abs=1e-6)

    def test_pattern_weights_nonnegative_and_bounded(self):
        estimator = ParameterEstimator(max_pattern_weight=5.0)
        params = estimator.fit(self._examples(), patterns=list(DEFAULT_CATALOGUE))
        assert all(0.0 < w <= 5.0 for w in params.pattern_weights.values())

    def test_summary_counts(self):
        estimator = ParameterEstimator()
        estimator.fit(self._examples())
        assert estimator.summary is not None
        assert estimator.summary.num_sequences == 2
        assert estimator.summary.num_attack_sequences == 1
        assert estimator.summary.num_alerts == len(ATTACK) + len(BENIGN)

    def test_train_from_incidents_on_corpus(self, corpus, benign_sequences):
        params = train_from_incidents(
            corpus.attack_sequences()[:50],
            benign_sequences[:20],
            patterns=list(DEFAULT_CATALOGUE),
        )
        assert params.observation_log.shape == (len(DEFAULT_VOCABULARY), NUM_STATES)
        assert len(params.pattern_weights) > 0

    def test_ablation_helpers(self):
        params = default_parameters()
        assert params.without_patterns().pattern_weights == {}
        assert np.allclose(params.without_transitions().transition_log, 0.0)


class TestPreemption:
    def test_damage_boundary_found(self):
        seq = AlertSequence.from_names(ATTACK)
        boundary = find_damage_boundary(seq)
        assert boundary.has_damage
        assert boundary.alert_name == "alert_privilege_escalation"

    def test_no_damage_boundary(self):
        seq = AlertSequence.from_names(BENIGN)
        assert not find_damage_boundary(seq).has_damage

    def test_preempted_outcome(self):
        seq = AlertSequence.from_names(ATTACK, step=600.0)
        detection = Detection(
            entity="user:x", timestamp=seq[1].timestamp, alert_index=1,
            trigger=seq[1], state=HiddenState.MALICIOUS, confidence=0.9,
        )
        result = evaluate_preemption(seq, detection)
        assert result.outcome is PreemptionOutcome.PREEMPTED
        assert result.lead_time_seconds == pytest.approx(
            seq[3].timestamp - seq[1].timestamp
        )
        assert result.alerts_before_damage == 2

    def test_late_detection(self):
        seq = AlertSequence.from_names(ATTACK, step=600.0)
        detection = Detection(
            entity="user:x", timestamp=seq[4].timestamp, alert_index=4,
            trigger=seq[4], state=HiddenState.MALICIOUS, confidence=0.9,
        )
        assert evaluate_preemption(seq, detection).outcome is PreemptionOutcome.DETECTED_LATE

    def test_missed(self):
        seq = AlertSequence.from_names(ATTACK)
        assert evaluate_preemption(seq, None).outcome is PreemptionOutcome.MISSED

    def test_preemptable_window_excludes_damage(self):
        seq = AlertSequence.from_names(ATTACK)
        window = preemptable_window(seq)
        assert len(window) == 3
        assert all(not a.is_critical() for a in window)

    def test_summary_rates(self):
        seq = AlertSequence.from_names(ATTACK, step=60.0)
        early = Detection("user:x", seq[1].timestamp, 1, seq[1], HiddenState.MALICIOUS, 0.9)
        results = [
            evaluate_preemption(seq, early),
            evaluate_preemption(seq, None),
        ]
        summary = summarize_outcomes(results)
        assert summary["num_attacks"] == 2
        assert summary["preemption_rate"] == pytest.approx(0.5)
        assert summary["detection_rate"] == pytest.approx(0.5)


class TestEvaluationHarness:
    def _examples(self, num_attack=6, num_benign=6):
        examples = []
        for i in range(num_attack):
            examples.append(EvaluationExample(
                AlertSequence.from_names(ATTACK, entity=f"user:a{i}"), True, f"attack-{i}"))
        for i in range(num_benign):
            examples.append(EvaluationExample(
                AlertSequence.from_names(BENIGN, entity=f"user:b{i}"), False, f"benign-{i}"))
        return examples

    def test_evaluate_detector_metrics(self):
        tagger = AttackTagger(patterns=list(DEFAULT_CATALOGUE))
        report = evaluate_detector(tagger, self._examples())
        assert report.confusion.recall == 1.0
        assert report.confusion.false_positive_rate == 0.0
        assert report.summary()["f1"] == 1.0

    def test_window_sweep_shows_effective_range(self):
        examples = self._examples()
        reports = window_sweep(
            lambda: AttackTagger(patterns=list(DEFAULT_CATALOGUE)), examples, [1, 3, 5]
        )
        assert reports[1].confusion.recall <= reports[3].confusion.recall
        assert reports[3].confusion.recall <= reports[5].confusion.recall + 1e-9

    def test_compare_detectors_keys(self):
        detectors = {
            "factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE)),
            "critical_only": CriticalAlertDetector(),
        }
        table = compare_detectors(detectors, self._examples())
        assert set(table) == {"factor_graph", "critical_only"}
        assert table["factor_graph"]["preemption_rate"] >= table["critical_only"]["preemption_rate"]

    def test_k_fold_indices_partition(self):
        folds = k_fold_indices(23, 5, seed=1)
        combined = sorted(int(i) for fold in folds for i in fold)
        assert combined == list(range(23))

    def test_k_fold_requires_two_folds(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1)

    def test_cross_validation_runs(self):
        examples = self._examples(8, 8)

        def build(train_examples):
            attack_sequences = [e.sequence for e in train_examples if e.is_attack]
            benign = [e.sequence for e in train_examples if not e.is_attack]
            params = train_from_incidents(attack_sequences, benign, patterns=list(DEFAULT_CATALOGUE))
            return AttackTagger(params, patterns=list(DEFAULT_CATALOGUE))

        result = cross_validate(build, examples, folds=4, seed=2)
        summary = result.mean_summary()
        assert 0.0 <= summary["recall"] <= 1.0
        assert len(result.fold_reports) == 4
