"""Tests for graph visualisation and the longitudinal analysis modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    attribute_incident,
    bin_alerts_per_day,
    catalogue_frequency_study,
    corpus_similarity_study,
    criticality_study,
    mine_common_subsequences,
    mined_catalogue_overlap,
    moving_average,
    render_daily_series,
    run_longitudinal_study,
    scan_fraction_of_daily_volume,
    summarize_daily_volumes,
    timing_study,
    triage_load_without_filtering,
)
from repro.attacks import MassScanEmulator
from repro.core.alerts import Alert
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import BlackHoleRouter, generate_scan_storm
from repro.viz import (
    ConnectionGraphBuilder,
    GraphAnnotator,
    ROLE_ATTACKER,
    ROLE_SCANNER,
    ROLE_TARGET,
    export_dot,
    export_gexf,
    export_json,
    fruchterman_reingold_layout,
    hub_centrality_check,
    multilevel_layout,
    render_ascii_summary,
)


@pytest.fixture(scope="module")
def small_graph():
    """A Fig. 1-shaped graph at test scale: one scanner star plus an attack."""
    emulator = MassScanEmulator(seed=6)
    profiles = emulator.default_profiles(total_scans=1_200, dominant_fraction=0.85)
    records = emulator.generate_scan_records(profiles, duration_seconds=600.0)
    sample = emulator.sample_most_frequent(records, sample_size=400)
    builder = ConnectionGraphBuilder()
    builder.add_scan_records(sample, dominant_scanner=profiles[0].source_ip)
    builder.add_attack("132.17.9.3", ["141.142.10.20", "141.142.10.21"])
    return builder, profiles[0].source_ip


class TestGraphBuilder:
    def test_stats_counts(self, small_graph):
        builder, _ = small_graph
        stats = builder.stats()
        assert stats.attack_edges == 2
        assert stats.scanner_edges == 400
        assert stats.nodes > 300
        assert stats.edges >= stats.attack_edges

    def test_roles_assigned(self, small_graph):
        builder, scanner = small_graph
        assert scanner in builder.nodes_with_role(ROLE_SCANNER)
        assert "132.17.9.3" in builder.nodes_with_role(ROLE_ATTACKER)
        assert len(builder.nodes_with_role(ROLE_TARGET)) == 2

    def test_scanner_nodes_heuristic(self, small_graph):
        builder, scanner = small_graph
        assert scanner in builder.scanner_nodes()

    def test_graphviz_output_format(self, small_graph):
        builder, _ = small_graph
        dot = export_dot(builder, max_edges=5)
        assert dot.startswith("digraph {")
        assert "->" in dot
        assert dot.rstrip().endswith("}")
        # Anonymised labels keep only two octets.
        assert ".xxx" not in dot.split("->")[0]

    def test_degree_distribution_has_hub(self, small_graph):
        builder, scanner = small_graph
        degrees = dict(builder.graph.degree())
        assert degrees[scanner] == max(degrees.values())


class TestLayout:
    def test_small_graph_layout_converges(self, small_graph):
        builder, scanner = small_graph
        layout = fruchterman_reingold_layout(builder.graph.to_undirected(), iterations=40, seed=2)
        assert len(layout.positions) == builder.graph.number_of_nodes()
        ratio = hub_centrality_check(layout, builder.graph, scanner)
        assert ratio < 0.5, "the mass scanner should sit at the centre of its scan disc"

    def test_multilevel_layout_matches_node_set(self, small_graph):
        builder, _ = small_graph
        layout = multilevel_layout(builder.graph, iterations=20, refine_iterations=5, seed=2)
        assert set(layout.positions) == set(builder.graph.nodes)

    def test_deterministic_for_fixed_seed(self, small_graph):
        builder, _ = small_graph
        graph = builder.graph.to_undirected()
        a = fruchterman_reingold_layout(graph, iterations=10, seed=5)
        b = fruchterman_reingold_layout(graph, iterations=10, seed=5)
        assert np.allclose(a.as_array(list(graph.nodes)), b.as_array(list(graph.nodes)))

    def test_empty_graph(self):
        import networkx as nx

        layout = fruchterman_reingold_layout(nx.Graph(), iterations=5)
        assert layout.positions == {}


class TestAnnotationAndExport:
    def test_annotator_cross_examines_router_and_detections(self, small_graph):
        builder, scanner = small_graph
        router = BlackHoleRouter()
        generate_scan_storm(router, total_scans=8_000, dominant_scanner=scanner, seed=8)
        summary = GraphAnnotator(builder).annotate(
            router=router, known_attacker_ips=["132.17.9.3"]
        )
        assert summary.mass_scanners >= 1
        assert summary.attackers == 1
        assert summary.targets == 2
        assert summary.total == builder.graph.number_of_nodes()

    def test_json_export_round_trip(self, small_graph):
        import json

        builder, _ = small_graph
        layout = fruchterman_reingold_layout(builder.graph.to_undirected(), iterations=5, seed=1)
        payload = json.loads(export_json(builder, layout))
        assert len(payload["nodes"]) == builder.graph.number_of_nodes()
        assert len(payload["edges"]) == builder.graph.number_of_edges()
        assert all("x" in node for node in payload["nodes"])

    def test_gexf_export(self, small_graph, tmp_path):
        builder, _ = small_graph
        path = export_gexf(builder, tmp_path / "fig1.gexf")
        assert path.exists() and path.stat().st_size > 0

    def test_ascii_rendering(self, small_graph):
        builder, _ = small_graph
        layout = fruchterman_reingold_layout(builder.graph.to_undirected(), iterations=5, seed=1)
        art = render_ascii_summary(builder, layout)
        assert len(art.splitlines()) >= 10


class TestSimilarityStudy:
    def test_fig3a_claim_on_corpus(self, corpus):
        result = corpus_similarity_study(corpus)
        assert result.num_attacks == len(corpus)
        assert result.fraction_below_threshold >= 0.95
        assert result.meets_paper_claim()
        assert 0.0 <= result.mean_similarity <= 1.0
        assert result.cdf_at(1.0) == pytest.approx(1.0)

    def test_including_benign_changes_little(self, corpus):
        strict = corpus_similarity_study(corpus, include_benign=False)
        loose = corpus_similarity_study(corpus, include_benign=True)
        assert abs(strict.fraction_below_threshold - loose.fraction_below_threshold) < 0.1


class TestLCSStudy:
    def test_fig3b_histogram_matches_base_frequencies(self, corpus):
        result = catalogue_frequency_study(corpus)
        assert result.most_frequent_pattern == "S1"
        assert result.max_frequency == 14
        assert result.length_range == (2, 14)
        expected = {p.name: p.base_frequency for p in DEFAULT_CATALOGUE}
        for name, count in result.histogram.items():
            assert count == expected[name], f"{name}: {count} != {expected[name]}"
        assert result.unattributed_incidents == 228 - sum(expected.values())

    def test_attribute_incident_prefers_longest(self):
        s1 = DEFAULT_CATALOGUE.get("S1")
        assert attribute_incident(s1.names, DEFAULT_CATALOGUE).name == "S1"
        assert attribute_incident(("alert_login_normal",), DEFAULT_CATALOGUE) is None

    def test_de_novo_mining_recovers_catalogue(self, corpus):
        mined = mine_common_subsequences(corpus, min_support=3, max_pairs=6_000)
        assert mined, "mining should recover recurring sequences"
        assert mined[0].support >= 3
        # With the pair budget capped for test speed, only a subset of the
        # catalogue is rediscovered; the Fig. 3b benchmark runs the full pass.
        overlap = mined_catalogue_overlap(mined)
        assert overlap > 0.1


class TestDailyStatsAndTiming:
    def test_fig2_volume_statistics(self):
        generator = IncidentGenerator(seed=21)
        breakdown = generator.daily_volume_breakdown(90)
        stats = summarize_daily_volumes(breakdown["total"], scan_volumes=breakdown["scans"])
        assert abs(stats.mean - 94_238) < 0.15 * 94_238
        assert stats.scan_mean is not None and stats.scan_mean > 0.6 * stats.mean
        assert stats.days == 90

    def test_bin_alerts_per_day(self):
        alerts = [Alert(float(day * 86_400 + 10), "alert_port_scan", "h") for day in range(5) for _ in range(day + 1)]
        counts = bin_alerts_per_day(alerts)
        assert list(counts) == [1, 2, 3, 4, 5]

    def test_moving_average_and_render(self):
        volumes = np.array([10, 20, 30, 40, 50])
        smoothed = moving_average(volumes, window=3)
        assert smoothed.shape == volumes.shape
        art = render_daily_series(volumes, width=10, height=4)
        assert len(art.splitlines()) == 5

    def test_timing_study_confirms_insight3(self, corpus):
        result = timing_study(corpus)
        assert result.incidents_analyzed > 200
        assert result.post_foothold.mean_seconds > result.reconnaissance.mean_seconds
        assert result.confirms_insight()

    def test_scan_fraction(self):
        assert scan_fraction_of_daily_volume(94_238, 80_000) == pytest.approx(0.849, abs=0.01)


class TestCriticalityStudy:
    def test_insight4_statistics(self, corpus):
        result = criticality_study(corpus)
        assert result.unique_critical_types == 19
        assert result.total_occurrences > 0
        assert result.coverage < 0.75, "many incidents must have no critical alert at all"
        assert result.mean_relative_position > 0.5, "critical alerts arrive late in the sequence"

    def test_triage_load(self):
        assert triage_load_without_filtering(94_238, 30.0) == pytest.approx(785.3, abs=1.0)
        with pytest.raises(ValueError):
            triage_load_without_filtering(-1)


class TestLongitudinalStudy:
    def test_full_report(self, corpus, generator):
        report = run_longitudinal_study(corpus, generator=IncidentGenerator(seed=13))
        rows = report.paper_comparison()
        assert len(rows) >= 12
        text = report.render_text()
        assert "download/compile/erase prevalence" in text
        assert report.motif_prevalence == pytest.approx(137 / 228, abs=0.02)
        assert report.patterns.max_frequency == 14
        assert report.similarity.meets_paper_claim()
